#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "net/codec.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/profiler.h"
#include "obs/quantile_sketch.h"
#include "obs/trace.h"
#include "serve/telemetry.h"

namespace deepmvi {
namespace {

// ---- Histogram bucket layout ----------------------------------------------

TEST(HistogramTest, BucketBoundsGrowBySqrtTwo) {
  EXPECT_DOUBLE_EQ(obs::Histogram::UpperBound(0), 1e-6);
  for (int i = 1; i < obs::Histogram::kNumBounds; ++i) {
    const double ratio =
        obs::Histogram::UpperBound(i) / obs::Histogram::UpperBound(i - 1);
    EXPECT_NEAR(ratio, std::sqrt(2.0), 1e-12) << "bucket " << i;
    EXPECT_DOUBLE_EQ(obs::Histogram::LowerBound(i),
                     obs::Histogram::UpperBound(i - 1));
  }
  EXPECT_DOUBLE_EQ(obs::Histogram::LowerBound(0), 0.0);
  // The layout spans 1 microsecond to ~50 minutes.
  EXPECT_GT(obs::Histogram::UpperBound(obs::Histogram::kNumBounds - 1),
            45.0 * 60.0);
}

TEST(HistogramTest, BucketIndexRespectsInclusiveUpperBounds) {
  for (int i = 0; i < obs::Histogram::kNumBounds; ++i) {
    const double bound = obs::Histogram::UpperBound(i);
    // Prometheus `le` semantics: the bound itself belongs to bucket i,
    // anything just above it to bucket i + 1 (or overflow).
    EXPECT_EQ(obs::Histogram::BucketIndex(bound), i);
    EXPECT_EQ(obs::Histogram::BucketIndex(bound * 1.000001),
              std::min(i + 1, obs::Histogram::kNumBounds));
  }
}

TEST(HistogramTest, BucketIndexEdgeValues) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1e-9), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1e9), obs::Histogram::kNumBounds);
  EXPECT_EQ(
      obs::Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
      obs::Histogram::kNumBounds);
}

TEST(HistogramTest, SnapshotTracksExactMomenta) {
  obs::Histogram histogram;
  histogram.Observe(0.010);
  histogram.Observe(0.002);
  histogram.Observe(0.500);
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 0.512);
  EXPECT_DOUBLE_EQ(snap.min, 0.002);
  EXPECT_DOUBLE_EQ(snap.max, 0.500);
  int64_t total = 0;
  for (int64_t c : snap.counts) total += c;
  EXPECT_EQ(total, 3);
}

TEST(HistogramTest, ResetClears) {
  obs::Histogram histogram;
  histogram.Observe(0.1);
  histogram.Reset();
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.95), 0.0);
}

// ---- Merge ----------------------------------------------------------------

TEST(HistogramTest, MergeMatchesCombinedObservation) {
  Rng rng(17);
  obs::Histogram left, right, combined;
  for (int i = 0; i < 500; ++i) {
    // Log-uniform latencies across five decades.
    const double value = 1e-5 * std::pow(10.0, 4.0 * rng.Uniform());
    (i % 2 == 0 ? left : right).Observe(value);
    combined.Observe(value);
  }
  obs::Histogram merged;
  merged.Merge(left.Snapshot());
  merged.Merge(right.Snapshot());

  const obs::HistogramSnapshot a = merged.Snapshot();
  const obs::HistogramSnapshot b = combined.Snapshot();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_NEAR(a.sum, b.sum, 1e-9 * std::abs(b.sum));
  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(q), b.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeIntoEmptyPreservesMinMax) {
  obs::Histogram source, target;
  source.Observe(0.25);
  source.Observe(0.75);
  target.Merge(source.Snapshot());
  const obs::HistogramSnapshot snap = target.Snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 0.75);
  EXPECT_EQ(snap.count, 2);
}

// ---- Percentiles ----------------------------------------------------------

TEST(HistogramTest, PercentileOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(obs::Histogram().Snapshot().Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentileOfSingleValueIsExact) {
  obs::Histogram histogram;
  histogram.Observe(0.0371);
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.Percentile(q), 0.0371) << "q=" << q;
  }
}

TEST(HistogramTest, PercentileWithinBucketFactorOfExactOrderStatistic) {
  // The histogram replaces reservoir sampling as the percentile source;
  // its contract is a deterministic estimate within one bucket-growth
  // factor (sqrt 2) of the exact order statistic.
  Rng rng(29);
  obs::Histogram histogram;
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    const double value = 1e-4 * std::pow(10.0, 3.0 * rng.Uniform());
    values.push_back(value);
    histogram.Observe(value);
  }
  std::sort(values.begin(), values.end());
  const obs::HistogramSnapshot snap = histogram.Snapshot();
  for (double q : {0.05, 0.25, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = serve::SortedPercentile(values, q);
    const double estimate = snap.Percentile(q);
    EXPECT_GE(estimate, exact / std::sqrt(2.0) - 1e-12) << "q=" << q;
    EXPECT_LE(estimate, exact * std::sqrt(2.0) + 1e-12) << "q=" << q;
  }
  // The extreme quantiles clamp to the exact observed range.
  EXPECT_GE(snap.Percentile(0.0), values.front());
  EXPECT_LE(snap.Percentile(1.0), values.back());
}

TEST(HistogramTest, PercentileIsOrderIndependent) {
  // Unlike the reservoir, the estimate cannot depend on arrival order:
  // feed the same values forward and backward and compare exactly.
  std::vector<double> values;
  Rng rng(31);
  for (int i = 0; i < 257; ++i) values.push_back(0.001 + rng.Uniform());
  obs::Histogram forward, backward;
  for (double v : values) forward.Observe(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.Observe(*it);
  }
  for (double q : {0.5, 0.95, 0.999}) {
    EXPECT_DOUBLE_EQ(forward.Snapshot().Percentile(q),
                     backward.Snapshot().Percentile(q));
  }
}

// ---- Metrics registry and Prometheus exposition ---------------------------

TEST(MetricsTest, RegistryIsIdempotentPerName) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.CounterNamed("dmvi_x_total", "help");
  obs::Counter* b = registry.CounterNamed("dmvi_x_total", "other help");
  EXPECT_EQ(a, b);
  a->Increment(2);
  EXPECT_EQ(b->value(), 2);
  EXPECT_EQ(registry.HistogramNamed("dmvi_h_seconds", "h"),
            registry.HistogramNamed("dmvi_h_seconds", "h"));
}

TEST(MetricsTest, CounterIsThreadSafe) {
  obs::Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 40000);
}

TEST(MetricsTest, PrometheusExpositionGolden) {
  obs::MetricsRegistry registry;
  registry.CounterNamed("dmvi_requests_total", "Completed requests.")
      ->Increment(3);
  registry.GaugeNamed("dmvi_queue_depth", "Queued right now.")->Set(2.5);
  // Two sub-microsecond observations keep the bucket list to exactly one
  // finite bucket, so the full text is stable enough to pin.
  obs::Histogram* histogram =
      registry.HistogramNamed("dmvi_tiny_seconds", "Tiny timings.");
  histogram->Observe(5e-7);
  histogram->Observe(5e-7);

  // std::map ordering: dmvi_q... < dmvi_r... < dmvi_t...
  EXPECT_EQ(registry.PrometheusText(),
            "# HELP dmvi_queue_depth Queued right now.\n"
            "# TYPE dmvi_queue_depth gauge\n"
            "dmvi_queue_depth 2.5\n"
            "# HELP dmvi_requests_total Completed requests.\n"
            "# TYPE dmvi_requests_total counter\n"
            "dmvi_requests_total 3\n"
            "# HELP dmvi_tiny_seconds Tiny timings.\n"
            "# TYPE dmvi_tiny_seconds histogram\n"
            "dmvi_tiny_seconds_bucket{le=\"1e-06\"} 2\n"
            "dmvi_tiny_seconds_bucket{le=\"+Inf\"} 2\n"
            "dmvi_tiny_seconds_sum 1e-06\n"
            "dmvi_tiny_seconds_count 2\n");
}

TEST(MetricsTest, PrometheusHistogramBucketsAreCumulative) {
  obs::Histogram histogram;
  histogram.Observe(0.001);
  histogram.Observe(0.010);
  histogram.Observe(0.010);
  histogram.Observe(0.100);
  std::ostringstream os;
  obs::AppendPrometheusHistogram(os, "dmvi_lat_seconds", "h",
                                 histogram.Snapshot());
  const std::string text = os.str();

  // Parse the `le` bucket lines back out and check monotonicity and the
  // mandatory +Inf == _count invariant Prometheus scrapers rely on.
  int64_t previous = 0;
  int64_t inf_value = -1;
  size_t buckets = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const size_t brace = line.find("_bucket{le=\"");
    if (brace == std::string::npos) continue;
    const size_t value_at = line.rfind(' ');
    const int64_t cumulative = std::stoll(line.substr(value_at + 1));
    EXPECT_GE(cumulative, previous) << line;
    previous = cumulative;
    ++buckets;
    if (line.find("+Inf") != std::string::npos) inf_value = cumulative;
  }
  EXPECT_GE(buckets, 2u);
  EXPECT_EQ(inf_value, 4);
  EXPECT_NE(text.find("dmvi_lat_seconds_count 4\n"), std::string::npos);
}

// ---- Trace spans ----------------------------------------------------------

TEST(TraceTest, DisabledTracerYieldsInertSpans) {
  obs::Span inert(nullptr, "anything");
  EXPECT_FALSE(inert.active());
  inert.AddArg("k", "v");  // Must be a no-op, not a crash.
  EXPECT_EQ(inert.context().trace_id, 0u);

  obs::SetGlobalTracer(nullptr);
  obs::Span kernel = obs::KernelSpan("matmul.blocked");
  EXPECT_FALSE(kernel.active());
}

TEST(TraceTest, RequestLevelTracerDropsKernelSpans) {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink, obs::TraceLevel::kRequest);
  EXPECT_TRUE(tracer.enabled(obs::TraceLevel::kRequest));
  EXPECT_FALSE(tracer.enabled(obs::TraceLevel::kKernel));
  {
    obs::Span request_span(&tracer, "service.process");
    obs::Span kernel_span(&tracer, "matmul.blocked",
                          obs::TraceLevel::kKernel);
    EXPECT_TRUE(request_span.active());
    EXPECT_FALSE(kernel_span.active());
  }
  EXPECT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].name, "service.process");
}

TEST(TraceTest, NestedSpansFormOneTrace) {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink, obs::TraceLevel::kKernel);
  {
    obs::Span root(&tracer, "http.request");
    root.set_request_id("req-1");
    {
      obs::Span child(&tracer, "service.process");
      obs::Span grandchild(&tracer, "model.predict");
      EXPECT_EQ(grandchild.context().trace_id, root.context().trace_id);
    }
    obs::Span sibling(&tracer, "http.write");
    EXPECT_EQ(sibling.context().trace_id, root.context().trace_id);
  }
  std::vector<obs::SpanRecord> records = sink.records();
  ASSERT_EQ(records.size(), 4u);
  // Records arrive innermost-first (scope exit order).
  std::map<std::string, obs::SpanRecord> by_name;
  for (const obs::SpanRecord& record : records) by_name[record.name] = record;
  const obs::SpanRecord& root = by_name.at("http.request");
  EXPECT_EQ(root.parent_span_id, 0u);
  EXPECT_EQ(root.request_id, "req-1");
  EXPECT_EQ(by_name.at("service.process").parent_span_id, root.span_id);
  EXPECT_EQ(by_name.at("model.predict").parent_span_id,
            by_name.at("service.process").span_id);
  EXPECT_EQ(by_name.at("http.write").parent_span_id, root.span_id);
  for (const auto& [name, record] : by_name) {
    EXPECT_EQ(record.trace_id, root.trace_id) << name;
    EXPECT_GE(record.duration_seconds, 0.0) << name;
  }
  // Children start no earlier than the root and end no later.
  const double root_end = root.start_seconds + root.duration_seconds;
  for (const auto& [name, record] : by_name) {
    EXPECT_GE(record.start_seconds, root.start_seconds - 1e-9) << name;
    EXPECT_LE(record.start_seconds + record.duration_seconds,
              root_end + 1e-9)
        << name;
  }
}

TEST(TraceTest, ExplicitParentLinksAcrossThreads) {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink);
  obs::SpanContext handoff;
  {
    obs::Span root(&tracer, "http.handle");
    handoff = tracer.CurrentContext();
    EXPECT_EQ(handoff.span_id, root.context().span_id);
    std::thread worker([&tracer, handoff] {
      obs::Span remote(&tracer, "service.process", handoff);
      EXPECT_EQ(remote.context().trace_id, handoff.trace_id);
    });
    worker.join();
  }
  std::vector<obs::SpanRecord> records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  std::map<std::string, obs::SpanRecord> by_name;
  for (const obs::SpanRecord& record : records) by_name[record.name] = record;
  EXPECT_EQ(by_name.at("service.process").parent_span_id,
            by_name.at("http.handle").span_id);
  EXPECT_EQ(by_name.at("service.process").trace_id,
            by_name.at("http.handle").trace_id);
  EXPECT_NE(by_name.at("service.process").thread_index,
            by_name.at("http.handle").thread_index);
}

TEST(TraceTest, RetrospectiveRecordSpanCarriesGivenTimes) {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink);
  obs::SpanContext context{tracer.NewId(), tracer.NewId()};
  tracer.RecordSpan("queue.wait", context, 7, 1.25, 0.5, "req-9",
                    {{"depth", "3"}});
  std::vector<obs::SpanRecord> records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "queue.wait");
  EXPECT_EQ(records[0].parent_span_id, 7u);
  EXPECT_DOUBLE_EQ(records[0].start_seconds, 1.25);
  EXPECT_DOUBLE_EQ(records[0].duration_seconds, 0.5);
  EXPECT_EQ(records[0].request_id, "req-9");
  ASSERT_EQ(records[0].args.size(), 1u);
  EXPECT_EQ(records[0].args[0].first, "depth");
}

TEST(TraceTest, SinkCapacityBoundsMemory) {
  obs::CollectingTraceSink sink(/*capacity=*/2);
  obs::Tracer tracer(&sink);
  for (int i = 0; i < 5; ++i) {
    obs::Span span(&tracer, "s");
  }
  EXPECT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.dropped(), 3);
}

/// Runs a fixed two-level workload and returns (name, parent-index) pairs
/// where parent-index is the position of the parent span in the same list
/// (-1 for roots) — the structural shape of the trace, ids abstracted out.
std::vector<std::pair<std::string, int>> WorkloadShape() {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink);
  for (int request = 0; request < 3; ++request) {
    obs::Span root(&tracer, "http.request");
    root.set_request_id("req-" + std::to_string(request));
    obs::Span handle(&tracer, "service.process");
    obs::Span predict(&tracer, "model.predict");
  }
  std::vector<obs::SpanRecord> records = sink.records();
  std::map<uint64_t, int> index_of;
  for (size_t i = 0; i < records.size(); ++i) {
    index_of[records[i].span_id] = static_cast<int>(i);
  }
  std::vector<std::pair<std::string, int>> shape;
  for (const obs::SpanRecord& record : records) {
    const auto parent = index_of.find(record.parent_span_id);
    shape.emplace_back(record.name,
                       parent == index_of.end() ? -1 : parent->second);
  }
  return shape;
}

TEST(TraceTest, SpanTreeIsStructurallyDeterministic) {
  // Two independent runs of the same workload must produce the same span
  // names in the same order with the same parent structure — ids and
  // timestamps differ, the tree does not.
  EXPECT_EQ(WorkloadShape(), WorkloadShape());
}

// ---- Chrome trace-event export --------------------------------------------

TEST(TraceTest, ChromeTraceJsonParsesAndNests) {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink, obs::TraceLevel::kKernel);
  {
    obs::Span root(&tracer, "train.epoch");
    root.set_request_id("epoch-0");
    root.AddArg("epoch", "0");
    obs::Span child(&tracer, "matmul.blocked", obs::TraceLevel::kKernel);
    child.AddArg("m", "8");
  }
  const std::string json = obs::ChromeTraceJson(sink.records());
  StatusOr<net::JsonValue> parsed = net::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const net::JsonValue& events = parsed->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array_items().size(), 2u);

  std::map<std::string, const net::JsonValue*> by_name;
  for (const net::JsonValue& event : events.array_items()) {
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_FALSE(event.at(key).is_null()) << "missing " << key;
    }
    EXPECT_EQ(event.at("ph").string_value(), "X");
    EXPECT_EQ(event.at("cat").string_value(), "dmvi");
    by_name[event.at("name").string_value()] = &event;
  }
  const net::JsonValue& epoch = *by_name.at("train.epoch");
  const net::JsonValue& matmul = *by_name.at("matmul.blocked");
  // Identity rides in args; the child's parent_span_id is the root's
  // span_id and both share a trace.
  EXPECT_EQ(matmul.at("args").at("parent_span_id").number_value(),
            epoch.at("args").at("span_id").number_value());
  EXPECT_EQ(matmul.at("args").at("trace_id").number_value(),
            epoch.at("args").at("trace_id").number_value());
  EXPECT_EQ(epoch.at("args").at("request_id").string_value(), "epoch-0");
  EXPECT_EQ(epoch.at("args").at("epoch").string_value(), "0");
  // Timestamps are microseconds; the child nests inside the root.
  const double root_start = epoch.at("ts").number_value();
  const double root_end = root_start + epoch.at("dur").number_value();
  EXPECT_GE(matmul.at("ts").number_value(), root_start - 1e-3);
  EXPECT_LE(matmul.at("ts").number_value() + matmul.at("dur").number_value(),
            root_end + 1e-3);
}

// ---- Histogram exemplars ---------------------------------------------------

TEST(ExemplarTest, ExpositionGolden) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram =
      registry.HistogramNamed("dmvi_tiny_seconds", "Tiny timings.");
  // Sub-microsecond observations pin the bucket list to one finite bucket;
  // the second observation's exemplar wins (most recent per bucket).
  histogram->ObserveWithExemplar(5e-7, "req-1");
  histogram->ObserveWithExemplar(6e-7, "req-7");
  EXPECT_EQ(registry.PrometheusText(),
            "# HELP dmvi_tiny_seconds Tiny timings.\n"
            "# TYPE dmvi_tiny_seconds histogram\n"
            "dmvi_tiny_seconds_bucket{le=\"1e-06\"} 2"
            " # {request_id=\"req-7\"} 6e-07\n"
            // Exemplars attach to the bucket the value landed in; the
            // +Inf slot only fills when an observation overflows.
            "dmvi_tiny_seconds_bucket{le=\"+Inf\"} 2\n"
            "dmvi_tiny_seconds_sum 1.1e-06\n"
            "dmvi_tiny_seconds_count 2\n");
}

TEST(ExemplarTest, PlainObservationsRenderWithoutSuffix) {
  obs::Histogram histogram;
  histogram.Observe(5e-7);
  std::ostringstream os;
  obs::AppendPrometheusHistogram(os, "dmvi_tiny_seconds", "h",
                                 histogram.Snapshot());
  EXPECT_EQ(os.str().find('#', os.str().find("TYPE") + 4), std::string::npos)
      << os.str();
}

TEST(ExemplarTest, SuffixIsInvisibleToWhitespaceSplittingParsers) {
  // dmvi_loadgen's PrometheusValue (and the CI greps) read `name value`
  // from the first two whitespace-separated fields; an exemplar suffix on
  // a bucket line must not perturb the _count/_sum lines they consume.
  obs::MetricsRegistry registry;
  registry.HistogramNamed("dmvi_lat_seconds", "h")
      ->ObserveWithExemplar(0.002, "req-3");
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("dmvi_lat_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("# {request_id=\"req-3\"} 0.002"), std::string::npos);
}

TEST(ExemplarTest, LabelValuesAreEscaped) {
  obs::Histogram histogram;
  histogram.ObserveWithExemplar(5e-7, "a\"b\\c");
  std::ostringstream os;
  obs::AppendPrometheusHistogram(os, "dmvi_x_seconds", "h",
                                 histogram.Snapshot());
  EXPECT_NE(os.str().find("request_id=\"a\\\"b\\\\c\""), std::string::npos)
      << os.str();
}

TEST(ExemplarTest, MergeAdoptsSourceExemplars) {
  obs::Histogram source, target;
  source.ObserveWithExemplar(5e-7, "req-42");
  target.Merge(source.Snapshot());
  const obs::HistogramSnapshot snap = target.Snapshot();
  ASSERT_FALSE(snap.exemplar_labels.empty());
  EXPECT_EQ(snap.exemplar_labels[0], "req-42");
  EXPECT_DOUBLE_EQ(snap.exemplar_values[0], 5e-7);
}

// ---- Collapsed-stack folding ----------------------------------------------

TEST(ProfilerTest, CollapseStacksFoldsAndSorts) {
  // Deterministic injected sampler: the aggregation contract is testable
  // without any signals — identical stacks fold into one counted line,
  // lines sort lexicographically, frames join root-first with ';'.
  const std::string collapsed = obs::CollapseStacks({
      {"main", "Fit", "MatMul"},
      {"main", "Fit"},
      {"main", "Fit", "MatMul"},
      {"main", "Encode"},
  });
  EXPECT_EQ(collapsed,
            "main;Encode 1\n"
            "main;Fit 1\n"
            "main;Fit;MatMul 2\n");
}

TEST(ProfilerTest, CollapseStacksHandlesEmpty) {
  EXPECT_EQ(obs::CollapseStacks({}), "");
  EXPECT_EQ(obs::CollapseStacks({{}, {}}), "(unresolved) 2\n");
}

// ---- Sampling profiler ------------------------------------------------------

TEST(ProfilerTest, StartRejectsBadRates) {
  EXPECT_EQ(obs::CpuProfiler::Start(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(obs::CpuProfiler::Start(obs::CpuProfiler::kMaxHz + 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(obs::CpuProfiler::IsRunning());
}

TEST(ProfilerTest, OneWindowAtATime) {
  Status started = obs::CpuProfiler::Start();
  if (started.code() == StatusCode::kFailedPrecondition) {
    GTEST_SKIP() << "no CPU-clock timers here: " << started.ToString();
  }
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_TRUE(obs::CpuProfiler::IsRunning());
  EXPECT_EQ(obs::CpuProfiler::Start().code(),
            StatusCode::kFailedPrecondition);
  const obs::ProfileResult result = obs::CpuProfiler::Stop();
  EXPECT_FALSE(obs::CpuProfiler::IsRunning());
  EXPECT_EQ(result.hz, obs::CpuProfiler::kDefaultHz);
}

TEST(ProfilerTest, SamplesLabeledCpuBurn) {
  Status started = obs::CpuProfiler::Start(/*hz=*/997);
  if (started.code() == StatusCode::kFailedPrecondition) {
    GTEST_SKIP() << "no CPU-clock timers here: " << started.ToString();
  }
  ASSERT_TRUE(started.ok()) << started.ToString();
  // Burn CPU under a label until samples must have landed (the timer
  // ticks on consumed CPU time, so wall-clock sleeps would never
  // sample). volatile keeps the loop from folding away.
  volatile double sink_value = 0.0;
  {
    obs::ProfileLabelScope label("obs_test.burn");
    Stopwatch watch;
    while (watch.ElapsedSeconds() < 0.25) {
      for (int i = 0; i < 1000; ++i) sink_value = sink_value + std::sqrt(i);
    }
  }
  const obs::ProfileResult result = obs::CpuProfiler::Stop();
  EXPECT_GT(result.samples, 0);
  EXPECT_GT(result.duration_seconds, 0.0);
  ASSERT_FALSE(result.collapsed.empty());
  // The label is the root-most frame of every sample taken in the scope.
  EXPECT_NE(result.collapsed.find("obs_test.burn"), std::string::npos)
      << result.collapsed;
  // Restartable: a second window opens cleanly after Stop.
  ASSERT_TRUE(obs::CpuProfiler::Start().ok());
  obs::CpuProfiler::Stop();
}

TEST(ProfilerTest, LabelScopesNestRootFirst) {
  // Pure label mechanics (no sampling): nesting and unwinding must be
  // balanced even when depth exceeds kMaxDepth.
  obs::ProfileLabelScope outer("outer");
  {
    std::vector<std::unique_ptr<obs::ProfileLabelScope>> deep;
    for (int i = 0; i < obs::ProfileLabelScope::kMaxDepth + 4; ++i) {
      deep.push_back(std::make_unique<obs::ProfileLabelScope>("deep"));
    }
  }
  obs::ProfileLabelScope inner("inner");
}

// ---- Flight recorder --------------------------------------------------------

obs::RequestRecord MakeRecord(int i, double latency) {
  obs::RequestRecord record;
  record.request_id = "req-" + std::to_string(i);
  record.model = "default";
  record.status = "OK";
  record.latency_seconds = latency;
  record.cells_imputed = i;
  return record;
}

TEST(FlightRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  obs::FlightRecorder recorder(/*capacity=*/4, /*slow_threshold_seconds=*/1.0);
  for (int i = 0; i < 10; ++i) recorder.Record(MakeRecord(i, 0.001));
  EXPECT_EQ(recorder.total_recorded(), 10);
  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].request_id,
              "req-" + std::to_string(6 + i));
  }
  // completed_seconds is stamped by Record and never decreases.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].completed_seconds, records[i - 1].completed_seconds);
  }
}

TEST(FlightRecorderTest, PartialRingReadsBackInOrder) {
  obs::FlightRecorder recorder(/*capacity=*/8, /*slow_threshold_seconds=*/1.0);
  for (int i = 0; i < 3; ++i) recorder.Record(MakeRecord(i, 0.001));
  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].request_id, "req-0");
  EXPECT_EQ(records[2].request_id, "req-2");
  EXPECT_TRUE(recorder.SlowSnapshot().empty());
}

TEST(FlightRecorderTest, SlowRingCapturesThresholdCrossers) {
  obs::FlightRecorder recorder(/*capacity=*/16,
                               /*slow_threshold_seconds=*/0.010,
                               /*slow_capacity=*/2);
  recorder.Record(MakeRecord(0, 0.001));
  recorder.Record(MakeRecord(1, 0.020));
  recorder.Record(MakeRecord(2, 0.010));  // At threshold: slow.
  recorder.Record(MakeRecord(3, 0.009));
  recorder.Record(MakeRecord(4, 0.500));
  EXPECT_EQ(recorder.total_slow(), 3);
  const std::vector<obs::RequestRecord> slow = recorder.SlowSnapshot();
  // Bounded at slow_capacity, newest retained.
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].request_id, "req-2");
  EXPECT_EQ(slow[1].request_id, "req-4");
  // The main ring still has everything.
  EXPECT_EQ(recorder.Snapshot().size(), 5u);
}

TEST(FlightRecorderTest, ConcurrentAppendAndSnapshot) {
  obs::FlightRecorder recorder(/*capacity=*/32,
                               /*slow_threshold_seconds=*/0.010);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&recorder, &stop] {
    while (!stop.load()) {
      // Every interleaving must observe well-formed records.
      for (const obs::RequestRecord& record : recorder.Snapshot()) {
        ASSERT_EQ(record.model, "default");
        ASSERT_EQ(record.request_id.compare(0, 4, "req-"), 0);
      }
      recorder.SlowSnapshot();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(MakeRecord(t * kPerThread + i,
                                   i % 7 == 0 ? 0.020 : 0.001));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(recorder.Snapshot().size(), 32u);
}

TEST(FlightRecorderTest, JsonRendersAllFieldsAndEscapes) {
  obs::RequestRecord record = MakeRecord(0, 0.125);
  record.request_id = "req \"quoted\"\n";
  record.status = "NotFound: no model";
  record.ok = false;
  record.queue_seconds = 0.25;
  record.predict_seconds = 0.0625;
  record.cache_hit = true;
  record.degraded = true;
  record.degrade_method = "LinearInterp";
  record.shed = false;
  record.completed_seconds = 1.5;
  StatusOr<net::JsonValue> parsed =
      net::ParseJson(obs::FlightRecordsJson({record}));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_array());
  const net::JsonValue& entry = parsed->array_items()[0];
  EXPECT_EQ(entry.at("request_id").string_value(), "req \"quoted\"\n");
  EXPECT_EQ(entry.at("status").string_value(), "NotFound: no model");
  EXPECT_FALSE(entry.at("ok").bool_value());
  EXPECT_DOUBLE_EQ(entry.at("latency_seconds").number_value(), 0.125);
  EXPECT_DOUBLE_EQ(entry.at("queue_seconds").number_value(), 0.25);
  EXPECT_DOUBLE_EQ(entry.at("predict_seconds").number_value(), 0.0625);
  EXPECT_TRUE(entry.at("cache_hit").bool_value());
  EXPECT_TRUE(entry.at("degraded").bool_value());
  EXPECT_EQ(entry.at("degrade_method").string_value(), "LinearInterp");
  EXPECT_FALSE(entry.at("shed").bool_value());
  EXPECT_DOUBLE_EQ(entry.at("completed_seconds").number_value(), 1.5);
  // A hand-built record has no wall-clock stamp: unix_seconds renders as
  // its zero default and the ISO form is empty rather than a fake epoch.
  EXPECT_DOUBLE_EQ(entry.at("unix_seconds").number_value(), 0.0);
  EXPECT_EQ(entry.at("time").string_value(), "");
  EXPECT_EQ(obs::FlightRecordsJson({}), "[]\n");
}

TEST(FlightRecorderTest, RecordStampsWallClockRenderedAsIso8601) {
  obs::FlightRecorder recorder(/*capacity=*/4, /*slow_threshold_seconds=*/1.0);
  recorder.Record(MakeRecord(0, 0.001));
  recorder.Record(MakeRecord(1, 0.001));
  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Stamped from the system clock: a plausible unix epoch (after
  // 2020-01-01, i.e. > 1.5e9 s) that never decreases across records.
  EXPECT_GT(records[0].unix_seconds, 1.5e9);
  EXPECT_GE(records[1].unix_seconds, records[0].unix_seconds);
  // JSON renders it both raw (at full precision: parsing back must not
  // lose whole seconds) and as ISO-8601 UTC.
  StatusOr<net::JsonValue> parsed =
      net::ParseJson(obs::FlightRecordsJson(records));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const net::JsonValue& entry = parsed->array_items()[0];
  EXPECT_NEAR(entry.at("unix_seconds").number_value(),
              records[0].unix_seconds, 0.5);
  const std::string& iso = entry.at("time").string_value();
  ASSERT_EQ(iso.size(), 24u) << iso;  // "YYYY-MM-DDThh:mm:ss.mmmZ"
  EXPECT_EQ(iso[4], '-');
  EXPECT_EQ(iso[10], 'T');
  EXPECT_EQ(iso[19], '.');
  EXPECT_EQ(iso.back(), 'Z');
  EXPECT_GE(iso.substr(0, 4), "2020");
}

// ---- Quantile sketch --------------------------------------------------------

/// Rank of `value` in sorted `data`: the number of elements <= value.
/// The sketch's quantile answers are judged by how far this rank is from
/// the requested one — the natural error measure for a mergeable sketch.
double RankOf(const std::vector<double>& sorted, double value) {
  return static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), value) - sorted.begin());
}

/// Asserts every decile of `sketch` lands within `tolerance` (a rank
/// fraction) of the exact order statistic of `data`.
void ExpectQuantilesWithinRankError(const obs::QuantileSketch& sketch,
                                    std::vector<double> data,
                                    double tolerance) {
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  for (int d = 0; d <= 10; ++d) {
    const double q = static_cast<double>(d) / 10.0;
    const double estimate = sketch.Quantile(q);
    const double rank = RankOf(data, estimate) / n;
    EXPECT_NEAR(rank, q, tolerance)
        << "q=" << q << " estimate=" << estimate << " n=" << n;
  }
}

TEST(QuantileSketchTest, ExactWhileUnderCapacity) {
  // Fewer distinct values than centroids: nothing is ever compressed, so
  // min/max/median are exact.
  obs::QuantileSketch sketch;
  for (int i = 63; i >= 1; --i) sketch.Observe(static_cast<double>(i));
  EXPECT_EQ(sketch.count(), 63);
  EXPECT_EQ(sketch.num_centroids(), 63);
  EXPECT_DOUBLE_EQ(sketch.min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 63.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 63.0);
  EXPECT_NEAR(sketch.Quantile(0.5), 32.0, 1.0);
}

TEST(QuantileSketchTest, RankErrorBoundedOnRandomInput) {
  Rng rng(17);
  std::vector<double> data;
  obs::QuantileSketch sketch;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.Gaussian(5.0, 2.0);
    data.push_back(value);
    sketch.Observe(value);
  }
  EXPECT_EQ(sketch.count(), 10000);
  EXPECT_LE(sketch.num_centroids(), sketch.capacity());
  // 64 centroids over 10k points: deciles should sit well within a few
  // percent of the true ranks.
  ExpectQuantilesWithinRankError(sketch, data, 0.05);
}

TEST(QuantileSketchTest, RankErrorBoundedOnSortedInput) {
  // Monotone streams are the classic failure mode for naive reservoir
  // schemes; the gap-based compression must not care about insert order.
  std::vector<double> data;
  obs::QuantileSketch ascending, descending;
  for (int i = 0; i < 5000; ++i) {
    const double value = std::sqrt(static_cast<double>(i));
    data.push_back(value);
    ascending.Observe(value);
  }
  for (int i = 4999; i >= 0; --i) {
    descending.Observe(std::sqrt(static_cast<double>(i)));
  }
  ExpectQuantilesWithinRankError(ascending, data, 0.05);
  ExpectQuantilesWithinRankError(descending, data, 0.05);
}

TEST(QuantileSketchTest, RankErrorBoundedOnAdversarialInput) {
  // Two far-apart clusters with a lone outlier between them, fed in an
  // alternating order that maximizes churn near the capacity boundary.
  Rng rng(29);
  std::vector<double> data;
  obs::QuantileSketch sketch;
  for (int i = 0; i < 4000; ++i) {
    const double value = (i % 2 == 0 ? 0.0 : 1000.0) + rng.Uniform();
    data.push_back(value);
    sketch.Observe(value);
  }
  data.push_back(500.0);
  sketch.Observe(500.0);
  ExpectQuantilesWithinRankError(sketch, data, 0.05);
  EXPECT_DOUBLE_EQ(sketch.min(), *std::min_element(data.begin(), data.end()));
  EXPECT_DOUBLE_EQ(sketch.max(), *std::max_element(data.begin(), data.end()));
}

TEST(QuantileSketchTest, NanObservationsAreCountedNotMixedIn) {
  obs::QuantileSketch sketch;
  sketch.Observe(1.0);
  sketch.Observe(std::numeric_limits<double>::quiet_NaN());
  sketch.Observe(3.0);
  EXPECT_EQ(sketch.count(), 2);
  EXPECT_EQ(sketch.nan_count(), 1);
  EXPECT_DOUBLE_EQ(sketch.min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 3.0);
  EXPECT_FALSE(std::isnan(sketch.Quantile(0.5)));
}

TEST(QuantileSketchTest, ObservationIsDeterministic) {
  // Same stream twice -> bit-identical quantiles: the sketch is part of
  // checkpointed reference profiles, so any nondeterminism would break
  // checkpoint byte-identity.
  Rng rng_a(7), rng_b(7);
  obs::QuantileSketch a, b;
  for (int i = 0; i < 3000; ++i) a.Observe(rng_a.Gaussian(0.0, 1.0));
  for (int i = 0; i < 3000; ++i) b.Observe(rng_b.Gaussian(0.0, 1.0));
  ASSERT_EQ(a.num_centroids(), b.num_centroids());
  for (int d = 0; d <= 10; ++d) {
    const double q = static_cast<double>(d) / 10.0;
    EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeApproximatesCombinedStream) {
  Rng rng(41);
  std::vector<double> data;
  std::vector<obs::QuantileSketch> parts(4);
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 2000; ++i) {
      const double value = rng.Gaussian(static_cast<double>(p), 1.0);
      data.push_back(value);
      parts[static_cast<size_t>(p)].Observe(value);
    }
  }
  obs::QuantileSketch merged;
  for (const obs::QuantileSketch& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count(), 8000);
  ExpectQuantilesWithinRankError(merged, data, 0.06);

  // Merging is deterministic: the same parts merged again in the same
  // order reproduce identical quantiles, and any merge order stays within
  // the rank-error bound (centroid layouts may differ across orders; the
  // answers they give must not drift).
  obs::QuantileSketch again;
  for (const obs::QuantileSketch& part : parts) again.Merge(part);
  for (int d = 0; d <= 10; ++d) {
    const double q = static_cast<double>(d) / 10.0;
    EXPECT_EQ(merged.Quantile(q), again.Quantile(q));
  }
  obs::QuantileSketch reversed;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    reversed.Merge(*it);
  }
  EXPECT_EQ(reversed.count(), 8000);
  ExpectQuantilesWithinRankError(reversed, data, 0.06);
}

TEST(DistributionSummaryTest, MomentsMatchExactComputation) {
  Rng rng(53);
  std::vector<double> data;
  obs::DistributionSummary summary;
  for (int i = 0; i < 2500; ++i) {
    const double value = rng.Gaussian(10.0, 3.0);
    data.push_back(value);
    summary.Observe(value);
  }
  double mean = 0.0;
  for (double v : data) mean += v;
  mean /= static_cast<double>(data.size());
  double var = 0.0;
  for (double v : data) var += (v - mean) * (v - mean);
  var /= static_cast<double>(data.size());
  EXPECT_EQ(summary.count(), 2500);
  EXPECT_NEAR(summary.mean(), mean, 1e-9);
  EXPECT_NEAR(summary.variance(), var, 1e-7);
  EXPECT_NEAR(summary.stddev(), std::sqrt(var), 1e-8);
  EXPECT_DOUBLE_EQ(summary.min(),
                   *std::min_element(data.begin(), data.end()));
  EXPECT_DOUBLE_EQ(summary.max(),
                   *std::max_element(data.begin(), data.end()));
}

TEST(DistributionSummaryTest, MergeMatchesSingleStream) {
  Rng rng(61);
  obs::DistributionSummary whole, left, right;
  for (int i = 0; i < 3000; ++i) {
    const double value = rng.Gaussian(0.0, 1.0) + (i % 3 == 0 ? 5.0 : 0.0);
    whole.Observe(value);
    (i < 1000 ? left : right).Observe(value);
  }
  obs::DistributionSummary merged = left;
  merged.Merge(right);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  // Merging an empty summary is a no-op in both directions.
  obs::DistributionSummary empty;
  merged.Merge(empty);
  EXPECT_EQ(merged.count(), whole.count());
  obs::DistributionSummary adopted;
  adopted.Merge(whole);
  EXPECT_NEAR(adopted.mean(), whole.mean(), 1e-12);
}

// ---- Drift statistics -------------------------------------------------------

TEST(DriftStatTest, MatchedDistributionScoresZero) {
  const std::vector<double> expected = {0.25, 0.25, 0.25, 0.25};
  const std::vector<int64_t> observed = {100, 100, 100, 100};
  EXPECT_NEAR(obs::PopulationStabilityIndex(expected, observed), 0.0, 1e-12);
  EXPECT_NEAR(obs::KolmogorovSmirnovStatistic(expected, observed), 0.0,
              1e-12);
}

TEST(DriftStatTest, KnownShiftMatchesHandComputation) {
  // Two bins, mass moved from 50/50 to 75/25:
  //   PSI = 0.25*ln(1.5) + (-0.25)*ln(0.5) = 0.27465307...
  //   KS  = |0.75 - 0.50| = 0.25.
  const std::vector<double> expected = {0.5, 0.5};
  const std::vector<int64_t> observed = {75, 25};
  EXPECT_NEAR(obs::PopulationStabilityIndex(expected, observed),
              0.25 * std::log(1.5) - 0.25 * std::log(0.5), 1e-12);
  EXPECT_NEAR(obs::KolmogorovSmirnovStatistic(expected, observed), 0.25,
              1e-12);
}

TEST(DriftStatTest, LargerShiftScoresHigher) {
  const std::vector<double> expected = {0.25, 0.25, 0.25, 0.25};
  const std::vector<int64_t> small_shift = {110, 100, 100, 90};
  const std::vector<int64_t> big_shift = {250, 100, 40, 10};
  const double small_psi =
      obs::PopulationStabilityIndex(expected, small_shift);
  const double big_psi = obs::PopulationStabilityIndex(expected, big_shift);
  EXPECT_GT(small_psi, 0.0);
  EXPECT_GT(big_psi, small_psi);
  EXPECT_GT(big_psi, 0.25);  // Conventional "drifted" territory.
  const double ks = obs::KolmogorovSmirnovStatistic(expected, big_shift);
  EXPECT_GT(ks, 0.0);
  EXPECT_LE(ks, 1.0);
}

TEST(DriftStatTest, DegenerateInputsScoreZero) {
  // Empty, mismatched lengths, and all-zero observations are all "no
  // evidence", never NaN/inf: the monitor calls these on live bins that
  // may not have filled yet.
  EXPECT_DOUBLE_EQ(obs::PopulationStabilityIndex({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(obs::PopulationStabilityIndex({0.5, 0.5}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(obs::PopulationStabilityIndex({0.5, 0.5}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(obs::KolmogorovSmirnovStatistic({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(obs::KolmogorovSmirnovStatistic({0.5, 0.5}, {0, 0}), 0.0);
  // An empty expected bin does not blow up PSI (epsilon floor).
  const double psi =
      obs::PopulationStabilityIndex({0.0, 1.0}, {50, 50});
  EXPECT_TRUE(std::isfinite(psi));
  EXPECT_GT(psi, 0.0);
}

// ---- Process stats ----------------------------------------------------------

TEST(ProcessStatsTest, LinuxSelfReadIsSane) {
  const obs::ProcessStats stats = obs::ReadProcessStats();
#if defined(__linux__)
  ASSERT_TRUE(stats.ok);
  EXPECT_GT(stats.rss_bytes, 1 << 20);  // A C++ test binary exceeds 1 MiB.
  EXPECT_GE(stats.cpu_seconds, 0.0);
  EXPECT_GT(stats.open_fds, 0);  // stdio at minimum.
#else
  EXPECT_FALSE(stats.ok);
#endif
}

TEST(TraceTest, ChromeTraceJsonEscapesStrings) {
  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink);
  {
    obs::Span span(&tracer, "s");
    span.set_request_id("a\"b\\c\n");
  }
  StatusOr<net::JsonValue> parsed =
      net::ParseJson(obs::ChromeTraceJson(sink.records()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at("traceEvents")
                .array_items()[0]
                .at("args")
                .at("request_id")
                .string_value(),
            "a\"b\\c\n");
}

}  // namespace
}  // namespace deepmvi
