// Property-based suites: algebraic invariants checked over parameterized
// random instances, complementing the per-module example-based tests.

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/ops.h"
#include "core/kernel_regression.h"
#include "data/io.h"
#include "linalg/solvers.h"
#include "linalg/svd.h"
#include "scenario/scenarios.h"
#include "tensor/matrix.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using namespace testutil;

// ---- Matrix algebra over random shapes -----------------------------------

class MatrixAlgebraSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatrixAlgebraSweep, TransposeOfProduct) {
  Rng rng(GetParam());
  const int m = rng.UniformInt(1, 8), k = rng.UniformInt(1, 8),
            n = rng.UniformInt(1, 8);
  Matrix a = Matrix::RandomGaussian(m, k, rng);
  Matrix b = Matrix::RandomGaussian(k, n, rng);
  // (AB)^T == B^T A^T.
  EXPECT_TRUE(a.MatMul(b).Transpose().ApproxEquals(
      b.Transpose().MatMul(a.Transpose()), 1e-11));
}

TEST_P(MatrixAlgebraSweep, DistributivityAndScaling) {
  Rng rng(GetParam() ^ 0xabcdef);
  const int m = rng.UniformInt(1, 7), n = rng.UniformInt(1, 7);
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  Matrix b = Matrix::RandomGaussian(m, n, rng);
  Matrix c = Matrix::RandomGaussian(n, 3, rng);
  // (A + B) C == AC + BC.
  EXPECT_TRUE((a + b).MatMul(c).ApproxEquals(a.MatMul(c) + b.MatMul(c), 1e-11));
  // (sA) C == s (A C).
  EXPECT_TRUE((a * 2.5).MatMul(c).ApproxEquals(a.MatMul(c) * 2.5, 1e-11));
}

TEST_P(MatrixAlgebraSweep, NormTriangleInequality) {
  Rng rng(GetParam() ^ 0x1234);
  const int m = rng.UniformInt(1, 9), n = rng.UniformInt(1, 9);
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  Matrix b = Matrix::RandomGaussian(m, n, rng);
  EXPECT_LE((a + b).Norm(), a.Norm() + b.Norm() + 1e-12);
}

TEST_P(MatrixAlgebraSweep, IdentityIsNeutral) {
  Rng rng(GetParam() ^ 0x777);
  const int m = rng.UniformInt(1, 8), n = rng.UniformInt(1, 8);
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  EXPECT_TRUE(Matrix::Identity(m).MatMul(a).ApproxEquals(a, 1e-13));
  EXPECT_TRUE(a.MatMul(Matrix::Identity(n)).ApproxEquals(a, 1e-13));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixAlgebraSweep,
                         ::testing::Range<uint64_t>(1, 9));

// ---- Numerical linear algebra --------------------------------------------

class LinalgSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinalgSweep, SvdReconstructionAndOrthogonality) {
  Rng rng(GetParam());
  const int m = rng.UniformInt(2, 12), n = rng.UniformInt(2, 12);
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  SvdResult svd = JacobiSvd(a);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(a, 1e-7));
  // Frobenius norm equals the l2 norm of the spectrum.
  double spec2 = 0.0;
  for (double s : svd.singular_values) spec2 += s * s;
  EXPECT_NEAR(a.SquaredNorm(), spec2, 1e-7 * (1.0 + a.SquaredNorm()));
}

TEST_P(LinalgSweep, SolveSpdResidual) {
  Rng rng(GetParam() ^ 0x55);
  const int n = rng.UniformInt(2, 10);
  Matrix g = Matrix::RandomGaussian(n, n, rng);
  Matrix spd = g.TransposeMatMul(g);
  for (int i = 0; i < n; ++i) spd(i, i) += n;
  Matrix b = Matrix::RandomGaussian(n, 2, rng);
  Matrix x = SolveSpd(spd, b);
  EXPECT_LT((spd.MatMul(x) - b).MaxAbs(), 1e-8);
}

TEST_P(LinalgSweep, LeastSquaresNormalEquations) {
  Rng rng(GetParam() ^ 0x99);
  const int m = rng.UniformInt(6, 16);
  const int n = rng.UniformInt(2, 5);
  Matrix a = Matrix::RandomGaussian(m, n, rng);
  Matrix b = Matrix::RandomGaussian(m, 1, rng);
  Matrix x = LeastSquaresSolve(a, b);
  // Residual orthogonal to the column space: A^T (Ax - b) == 0.
  Matrix normal = a.TransposeMatMul(a.MatMul(x) - b);
  EXPECT_LT(normal.MaxAbs(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinalgSweep, ::testing::Range<uint64_t>(1, 9));

// ---- Autodiff: random composite graphs -----------------------------------

class AutodiffGraphSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutodiffGraphSweep, RandomCompositeGradCheck) {
  Rng rng(GetParam() * 7919);
  const int m = rng.UniformInt(2, 5), n = rng.UniformInt(2, 5);
  Matrix x0 = Matrix::RandomGaussian(m, n, rng, 0.0, 0.5);
  Matrix x1 = Matrix::RandomGaussian(n, m, rng, 0.0, 0.5);
  const uint64_t variant = GetParam() % 4;
  auto graph = [variant](ad::Tape&, const std::vector<ad::Var>& v) {
    ad::Var h = ad::MatMul(v[0], v[1]);  // m x m
    switch (variant) {
      case 0:
        h = ad::Tanh(h);
        break;
      case 1:
        h = ad::Sigmoid(ad::Scale(h, 0.7));
        break;
      case 2:
        h = ad::Mul(h, h);
        break;
      default:
        h = ad::SoftmaxRows(h);
        break;
    }
    return ad::Add(ad::Sum(ad::Square(h)), ad::Mean(v[0]));
  };
  auto analytic = ad::AnalyticGradient(graph, {x0, x1});
  auto numeric = ad::NumericalGradient(graph, {x0, x1});
  for (size_t i = 0; i < analytic.size(); ++i) {
    for (int r = 0; r < analytic[i].rows(); ++r) {
      for (int c = 0; c < analytic[i].cols(); ++c) {
        EXPECT_NEAR(analytic[i](r, c), numeric[i](r, c), 1e-5)
            << "variant " << variant;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutodiffGraphSweep,
                         ::testing::Range<uint64_t>(1, 13));

// ---- Scenario statistics ----------------------------------------------------

class McarFractionSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(McarFractionSweep, MissingFractionWithinTolerance) {
  const auto [n, t_len] = GetParam();
  ScenarioConfig config;
  config.kind = ScenarioKind::kMcar;
  config.percent_incomplete = 1.0;
  config.missing_fraction = 0.1;
  config.block_size = 10;
  config.seed = 21;
  Mask mask = GenerateScenario(config, n, t_len);
  // Overall missing fraction close to 10% (placement clashes allow a
  // small shortfall).
  EXPECT_NEAR(mask.MissingFraction(), 0.1, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, McarFractionSweep,
    ::testing::Values(std::make_pair(5, 400), std::make_pair(20, 400),
                      std::make_pair(10, 1000), std::make_pair(40, 250)));

// ---- Kernel regression convexity ------------------------------------------

TEST(KernelRegressionProperty, WeightedAverageWithinSiblingRange) {
  // U (Eq. 18) is a convex combination of available sibling values, so it
  // must lie inside their [min, max] for any embedding state.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const int num_series = rng.UniformInt(3, 8);
    const int t_len = 12;
    Dimension dim{"series", {}};
    for (int i = 0; i < num_series; ++i) {
      dim.members.push_back("s" + std::to_string(i));
    }
    Matrix values = Matrix::RandomGaussian(num_series, t_len, rng);
    DataTensor data({dim}, values);
    Mask mask(num_series, t_len);

    nn::ParameterStore store;
    DeepMviConfig config;
    config.embedding_dim = 4;
    KernelRegression kr(&store, data.dims(), config, rng);
    ad::Tape tape;
    std::vector<int> times = {3, 7};
    ad::Var features = kr.Forward(tape, data, values, mask, 0, times);
    for (size_t p = 0; p < times.size(); ++p) {
      double lo = 1e300, hi = -1e300;
      for (int s = 1; s < num_series; ++s) {
        lo = std::min(lo, values(s, times[p]));
        hi = std::max(hi, values(s, times[p]));
      }
      const double u = features.value()(static_cast<int>(p), 0);
      EXPECT_GE(u, lo - 1e-6) << "seed " << seed;
      EXPECT_LE(u, hi + 1e-6) << "seed " << seed;
    }
  }
}

TEST(KernelRegressionProperty, WeightSumDecreasesWithMissingSiblings) {
  // W (Eq. 19) sums kernel weights over AVAILABLE siblings only, so
  // removing siblings can only decrease it.
  Rng rng(9);
  Dimension dim{"series", {"a", "b", "c", "d", "e"}};
  Matrix values = Matrix::RandomGaussian(5, 6, rng);
  DataTensor data({dim}, values);

  nn::ParameterStore store;
  DeepMviConfig config;
  KernelRegression kr(&store, data.dims(), config, rng);

  Mask all_available(5, 6);
  ad::Tape t1;
  double w_full = kr.Forward(t1, data, values, all_available, 0, {2})
                      .value()(0, 1);
  Mask degraded = all_available;
  degraded.set_missing(1, 2);
  degraded.set_missing(2, 2);
  ad::Tape t2;
  double w_less = kr.Forward(t2, data, values, degraded, 0, {2}).value()(0, 1);
  EXPECT_LT(w_less, w_full);
  EXPECT_GT(w_less, 0.0);
}

// ---- Round-trip invariants --------------------------------------------------

class NormalizationSweep : public SeededRngTest {};

TEST_P(NormalizationSweep, ZScoreDenormalizeIsIdentityOnAvailableCells) {
  const int n = rng().UniformInt(2, 10), t_len = rng().UniformInt(20, 120);
  Matrix values = Matrix::RandomGaussian(n, t_len, rng(), 3.0, 5.0);
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask = McarMask(n, t_len, 0.2, GetParam() ^ 0x5a5a);

  auto stats = data.ComputeNormalization(mask);
  DataTensor normalized = data.Normalized(stats);
  Matrix restored = DataTensor::Denormalize(normalized.values(), stats);
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) {
      if (mask.available(r, t)) {
        EXPECT_NEAR(restored(r, t), values(r, t),
                    1e-9 * (1.0 + std::abs(values(r, t))))
            << "(" << r << "," << t << ")";
      }
    }
  }
  // Normalized available cells of a non-degenerate series are z-scored:
  // mean 0, variance 1 over the available cells.
  for (int r = 0; r < n; ++r) {
    double sum = 0.0, sum2 = 0.0;
    int count = 0;
    for (int t = 0; t < t_len; ++t) {
      if (!mask.available(r, t)) continue;
      sum += normalized.values()(r, t);
      sum2 += normalized.values()(r, t) * normalized.values()(r, t);
      ++count;
    }
    if (count < 2) continue;
    EXPECT_NEAR(sum / count, 0.0, 1e-9) << "series " << r;
    EXPECT_NEAR(sum2 / count, 1.0, 1e-6) << "series " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizationSweep,
                         ::testing::Range<uint64_t>(1, 7));

class MaskRoundTripSweep : public SeededRngTest {};

TEST_P(MaskRoundTripSweep, ComplementAndSerializationRoundTrip) {
  const int n = rng().UniformInt(1, 12), t_len = rng().UniformInt(5, 200);
  Mask mask = McarMask(n, t_len, 0.15, GetParam() ^ 0xc0ffee);

  // Complement is an involution and exactly swaps the two cell counts.
  Mask complement = mask.Complemented();
  EXPECT_EQ(complement.CountMissing(), mask.CountAvailable());
  EXPECT_EQ(complement.CountAvailable(), mask.CountMissing());
  EXPECT_FALSE(mask.CountMissing() > 0 && complement == mask);
  EXPECT_TRUE(complement.Complemented() == mask);
  // A mask and its complement intersect to nothing available.
  EXPECT_EQ(mask.And(complement).CountAvailable(), 0);

  // CSV serialization round-trips bit-exactly.
  const std::string path =
      TempPath("mask_roundtrip_" + std::to_string(GetParam()) + ".csv");
  ASSERT_TRUE(WriteMask(mask, path).ok());
  StatusOr<Mask> loaded = ReadMask(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == mask);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskRoundTripSweep,
                         ::testing::Range<uint64_t>(1, 7));

class SvdTruncationSweep : public SeededRngTest {};

TEST_P(SvdTruncationSweep, TruncationErrorMatchesSpectralTail) {
  // Eckart-Young: the rank-k SVD truncation error satisfies
  // ||A - A_k||_F^2 = sum_{i > k} s_i^2, decreasing to 0 at full rank.
  const int m = rng().UniformInt(3, 10), n = rng().UniformInt(3, 10);
  Matrix a = Matrix::RandomGaussian(m, n, rng());
  SvdResult svd = JacobiSvd(a);
  const int r = static_cast<int>(svd.singular_values.size());
  double prev_error = -1.0;
  for (int k = 1; k <= r; ++k) {
    const double error = (a - svd.Reconstruct(k)).SquaredNorm();
    double tail = 0.0;
    for (int i = k; i < r; ++i) {
      tail += svd.singular_values[i] * svd.singular_values[i];
    }
    EXPECT_NEAR(error, tail, 1e-7 * (1.0 + a.SquaredNorm())) << "rank " << k;
    if (prev_error >= 0.0) {
      EXPECT_LE(error, prev_error + 1e-9);
    }
    prev_error = error;
  }
  EXPECT_LT((a - svd.Reconstruct(r)).SquaredNorm(),
            1e-7 * (1.0 + a.SquaredNorm()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvdTruncationSweep,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace deepmvi
