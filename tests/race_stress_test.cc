// Deterministically-sized concurrency stress suite, built to run under
// ThreadSanitizer (and -fsanitize=address) in CI: every test hammers one
// contended path of the serving stack with a small, fixed workload and
// asserts the aggregate outcome, so a pass means "no data races and no
// lost updates" rather than "nothing crashed".
//
// Sizing: thin by default (CI budgets, and TSan costs ~10x). Set
// DMVI_RACE_STRESS_ITERS=<multiplier> to scale every loop up for soak
// runs (e.g. 20 for a minutes-long local hunt).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "core/deepmvi.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/quality_monitor.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "storage/chunk_cache.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using testutil::MakeSeasonalCase;
using testutil::SeasonalCase;
using testutil::TempPath;
using testutil::TinyDeepMviConfig;

using serve::ImputationRequest;
using serve::ImputationResponse;
using serve::ImputationService;
using serve::ResponseCache;
using serve::ServiceConfig;
using serve::TelemetrySnapshot;

/// Iteration multiplier from DMVI_RACE_STRESS_ITERS (default 1 = thin).
int StressScale() {
  static const int scale = [] {
    const char* env = std::getenv("DMVI_RACE_STRESS_ITERS");
    if (env == nullptr) return 1;
    const int value = std::atoi(env);
    return value > 0 ? value : 1;
  }();
  return scale;
}

/// One tiny trained model, fit once and parked as a checkpoint so tests
/// can reload it cheaply (registry reloads deserialize instead of
/// retraining).
struct SharedModel {
  SeasonalCase data_case;
  std::string checkpoint_path;
  std::shared_ptr<const DataTensor> data;
};
const SharedModel& GetSharedModel() {
  static const SharedModel* shared = [] {
    auto* out = new SharedModel{MakeSeasonalCase(31, 5, 120),
                                TempPath("race_stress_model.dmvi"), nullptr};
    DeepMviConfig config = TinyDeepMviConfig();
    config.seed = 77;
    DeepMviImputer imputer(config);
    TrainedDeepMvi model = imputer.Fit(out->data_case.data,
                                       out->data_case.mask);
    Status saved = model.Save(out->checkpoint_path);
    DMVI_CHECK(saved.ok()) << saved.ToString();
    out->data = std::make_shared<DataTensor>(out->data_case.data);
    return out;
  }();
  return *shared;
}

/// A handful of distinct masks (distinct cache fingerprints) so cache
/// probes alternate between keys and a tiny budget actually evicts.
std::vector<Mask> DistinctMasks(int count) {
  const SharedModel& shared = GetSharedModel();
  std::vector<Mask> masks;
  for (int v = 0; v < count; ++v) {
    Mask mask = shared.data_case.mask;
    mask.SetMissingRange(v % mask.rows(), 10 + 5 * v, 14 + 5 * v);
    masks.push_back(std::move(mask));
  }
  return masks;
}

// ---- Service: Submit vs. registry reload vs. cache eviction -----------------

// The flagship scenario: request traffic, warm model reloads, and response
// cache eviction all running at once — the production shape of a
// deployment update under load. Every future must still resolve OK.
TEST(RaceStressTest, SubmitDuringRegistryReloadAndCacheThrash) {
  const SharedModel& shared = GetSharedModel();
  ServiceConfig config;
  config.max_batch_size = 4;
  config.batch_linger_ms = 0.2;
  config.threads = 2;
  // Budget of a couple of responses: probes constantly evict.
  config.cache_mb = 12.0 * 1024.0 / (1024.0 * 1024.0);
  ImputationService service(config);
  ASSERT_TRUE(
      service.registry().LoadFromFile("m", shared.checkpoint_path).ok());

  const std::vector<Mask> masks = DistinctMasks(6);
  const int submits_per_thread = 25 * StressScale();
  const int reloads = 15 * StressScale();
  const int scrapes = 60 * StressScale();

  std::vector<std::future<ImputationResponse>> futures[2];
  std::atomic<bool> done{false};

  std::thread submitters[2];
  for (int t = 0; t < 2; ++t) {
    submitters[t] = std::thread([&, t] {
      for (int i = 0; i < submits_per_thread; ++i) {
        ImputationRequest request;
        request.model = "m";
        request.data = shared.data;
        request.mask = masks[(t * submits_per_thread + i) % masks.size()];
        futures[t].push_back(service.Submit(std::move(request)));
      }
    });
  }
  // Warm reloads: each swaps in a freshly deserialized model while
  // requests are in flight (old weights stay valid via retirement).
  std::thread reloader([&] {
    for (int i = 0; i < reloads; ++i) {
      ASSERT_TRUE(
          service.registry().LoadFromFile("m", shared.checkpoint_path).ok());
    }
  });
  // Observability scrape riding the same locks as the hot path.
  std::thread scraper([&] {
    for (int i = 0; i < scrapes && !done.load(); ++i) {
      TelemetrySnapshot snapshot = service.telemetry();
      EXPECT_GE(snapshot.requests, 0);
      (void)service.queue_depth();
      (void)service.PressureDepth();
      if (service.response_cache() != nullptr) {
        ResponseCache::Stats stats = service.response_cache()->stats();
        EXPECT_GE(stats.hits + stats.misses, 0);
      }
    }
  });

  for (auto& submitter : submitters) submitter.join();
  reloader.join();
  int64_t answered = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      ImputationResponse response = future.get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      ++answered;
    }
  }
  done = true;
  scraper.join();
  EXPECT_EQ(answered, 2 * submits_per_thread);
  service.Shutdown();
  EXPECT_EQ(service.telemetry().requests, 2 * submits_per_thread);
}

// Shutdown racing the dispatcher's lazy start: the dispatcher thread
// handle is written by the first Submit and consumed by Shutdown; every
// already-submitted future must still be drained. Regression shape for
// the unlocked dispatcher_ read Shutdown used to do.
TEST(RaceStressTest, ShutdownDrainsRacingSubmits) {
  const SharedModel& shared = GetSharedModel();
  const int rounds = 10 * StressScale();
  for (int round = 0; round < rounds; ++round) {
    ServiceConfig config;
    config.max_batch_size = 2;
    config.batch_linger_ms = 0.0;
    config.threads = 1;
    ImputationService service(config);
    ASSERT_TRUE(
        service.registry().LoadFromFile("m", shared.checkpoint_path).ok());
    std::vector<std::future<ImputationResponse>> futures;
    for (int i = 0; i < 3; ++i) {
      ImputationRequest request;
      request.model = "m";
      request.data = shared.data;
      request.mask = shared.data_case.mask;
      futures.push_back(service.Submit(std::move(request)));
    }
    // Shutdown from another thread while the dispatcher may still be
    // between "started" and "first batch".
    std::thread stopper([&] { service.Shutdown(); });
    stopper.join();
    for (auto& future : futures) {
      ImputationResponse response = future.get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    }
  }
}

// ---- Metrics: scrape during load --------------------------------------------

TEST(RaceStressTest, MetricsScrapeDuringCounterAndHistogramStorm) {
  obs::MetricsRegistry registry;
  const int writers = 4;
  const int iters = 400 * StressScale();
  std::atomic<bool> done{false};
  // Registered up front so the scraper always has something to render
  // (writers then keep re-asking by name, the contended path).
  registry.CounterNamed("dmvi_stress_events_total", "Stress-loop events.");
  // Scraper renders the full exposition while writers register and bump
  // instruments (registration is idempotent, so every writer asks for the
  // instruments by name every iteration — the contended path).
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string text = registry.PrometheusText();
      EXPECT_NE(text.find("dmvi_"), std::string::npos);
    }
  });
  ParallelFor(writers, writers, [&](int w) {
    for (int i = 0; i < iters; ++i) {
      registry
          .CounterNamed("dmvi_stress_events_total", "Stress-loop events.")
          ->Increment();
      registry
          .HistogramNamed("dmvi_stress_latency_seconds", "Stress latencies.")
          ->Observe(1e-4 * ((w * iters + i) % 100));
      registry.GaugeNamed("dmvi_stress_depth", "Stress depth.")
          ->Set(static_cast<double>(i));
    }
  });
  done = true;
  scraper.join();
  EXPECT_EQ(
      registry.CounterNamed("dmvi_stress_events_total", "Stress-loop events.")
          ->value(),
      static_cast<int64_t>(writers) * iters);
}

// ---- Tracer: span storm into a bounded sink ---------------------------------

TEST(RaceStressTest, TraceSinkSpanStormWithConcurrentReaders) {
  obs::CollectingTraceSink sink(/*capacity=*/128);
  obs::Tracer tracer(&sink);
  const int threads = 4;
  const int spans_per_thread = 300 * StressScale();
  std::atomic<bool> done{false};
  // Reader drains snapshots while the storm runs: records() copies under
  // the sink lock, dropped() reads the counter the storm is bumping.
  std::thread reader([&] {
    while (!done.load()) {
      EXPECT_LE(sink.records().size(), 128u);
      EXPECT_GE(sink.dropped(), 0);
    }
  });
  ParallelFor(threads, threads, [&](int t) {
    for (int i = 0; i < spans_per_thread; ++i) {
      obs::Span outer(&tracer, "storm.outer");
      outer.AddArg("thread", std::to_string(t));
      obs::Span inner(&tracer, "storm.inner");  // Implicit child of outer.
    }
  });
  done = true;
  reader.join();
  const int64_t total =
      static_cast<int64_t>(threads) * spans_per_thread * 2;
  EXPECT_EQ(static_cast<int64_t>(sink.records().size()) + sink.dropped(),
            total);
  EXPECT_LE(sink.records().size(), 128u);
}

// ---- Worker pool: nested regions and error teardown -------------------------

TEST(RaceStressTest, NestedParallelForAndExceptionTeardown) {
  const int rounds = 6 * StressScale();
  for (int round = 0; round < rounds; ++round) {
    std::atomic<int64_t> sum{0};
    // Width varies across rounds so the persistent pool keeps growing /
    // reusing threads; the inner region always runs on fresh threads.
    const int outer = 2 + (round % 3);
    ParallelFor(outer * 2, outer, [&](int i) {
      ParallelFor(4, 2, [&](int j) { sum.fetch_add(i * 4 + j); });
    });
    const int n = outer * 2 * 4;
    EXPECT_EQ(sum.load(), static_cast<int64_t>(n) * (n - 1) / 2);

    // Error path: one iteration throws; the rethrow must not corrupt the
    // pool for the next round (workers drained, job cleared).
    EXPECT_THROW(
        ParallelFor(8, 2,
                    [&](int i) {
                      if (i == 5) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
  }
  // Pool still serves clean work after repeated teardowns.
  std::atomic<int> after{0};
  ParallelFor(8, 4, [&](int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

// ---- Telemetry: record / snapshot / reset -----------------------------------

TEST(RaceStressTest, TelemetryRecordSnapshotResetStorm) {
  serve::Telemetry telemetry;
  const int writers = 3;
  const int iters = 500 * StressScale();
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load()) {
      serve::TelemetrySnapshot snapshot = telemetry.Snapshot();
      // Internal consistency of one cut: failures never exceed requests.
      EXPECT_LE(snapshot.failures, snapshot.requests);
      EXPECT_GE(snapshot.wall_seconds, 0.0);
    }
  });
  std::thread resetter([&] {
    for (int i = 0; i < 20 * StressScale(); ++i) telemetry.Reset();
  });
  ParallelFor(writers, writers, [&](int w) {
    for (int i = 0; i < iters; ++i) {
      telemetry.RecordRequest(1e-4 * (i % 50), /*rows=*/1, /*cells=*/3,
                              /*ok=*/i % 7 != 0);
      if (i % 16 == 0) telemetry.RecordBatch(4);
      if (i % 5 == 0) telemetry.RecordCacheLookup(i % 10 == 0);
      if (i % 11 == 0) telemetry.RecordDegraded();
      (void)w;
    }
  });
  done = true;
  snapshotter.join();
  resetter.join();
  // Deterministic epilogue: after a final reset the counters are exact.
  telemetry.Reset();
  telemetry.RecordRequest(0.001, 2, 5, true);
  telemetry.RecordRequest(0.002, 1, 4, false);
  serve::TelemetrySnapshot snapshot = telemetry.Snapshot();
  EXPECT_EQ(snapshot.requests, 2);
  EXPECT_EQ(snapshot.failures, 1);
  EXPECT_EQ(snapshot.rows_served, 3);
  EXPECT_EQ(snapshot.cells_imputed, 9);
}

// ---- Profiler: windows vs. scrapes vs. request storm ------------------------

// The always-on observability trio running at once: profiler windows
// opening and closing (timer arm/disarm, sample slab swap), /metrics-style
// registry scrapes, and a request storm feeding the flight recorder. The
// profiler's Stop must synchronize with its signal handler, and label
// scopes on the storm threads race the handler's TLS reads by design —
// TSan gets a labels-only handler, everywhere else the native unwinder
// runs. Every future still resolves OK and the recorder's totals are
// exact.
TEST(RaceStressTest, ProfilerWindowsDuringScrapeAndRequestStorm) {
  const SharedModel& shared = GetSharedModel();
  obs::FlightRecorder recorder(/*capacity=*/64,
                               /*slow_threshold_seconds=*/0.5);
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.max_batch_size = 4;
  config.batch_linger_ms = 0.2;
  config.threads = 2;
  config.recorder = &recorder;
  config.metrics = &registry;
  ImputationService service(config);
  ASSERT_TRUE(
      service.registry().LoadFromFile("m", shared.checkpoint_path).ok());

  const std::vector<Mask> masks = DistinctMasks(6);
  const int submits_per_thread = 20 * StressScale();
  const int windows = 8 * StressScale();
  std::atomic<bool> done{false};

  // Profiler windows churn while requests run: every Start either opens a
  // window (then its Stop folds cleanly) or reports one is already open.
  std::thread profiler_churn([&] {
    for (int i = 0; i < windows; ++i) {
      Status started = obs::CpuProfiler::Start(/*hz=*/499);
      if (started.ok()) {
        const obs::ProfileResult result = obs::CpuProfiler::Stop();
        EXPECT_GE(result.samples, 0);
        EXPECT_GE(result.dropped, 0);
      } else {
        EXPECT_EQ(started.code(), StatusCode::kFailedPrecondition);
      }
    }
  });
  std::thread scraper([&] {
    while (!done.load()) {
      const std::string text = registry.PrometheusText();
      EXPECT_NE(text.find("dmvi_"), std::string::npos);
      (void)recorder.Snapshot();
      (void)recorder.total_slow();
    }
  });

  std::vector<std::future<ImputationResponse>> futures[2];
  std::thread submitters[2];
  for (int t = 0; t < 2; ++t) {
    submitters[t] = std::thread([&, t] {
      for (int i = 0; i < submits_per_thread; ++i) {
        obs::ProfileLabelScope label("race_stress.submit");
        ImputationRequest request;
        request.model = "m";
        request.request_id =
            "rs-" + std::to_string(t) + "-" + std::to_string(i);
        request.data = shared.data;
        request.mask = masks[(t * submits_per_thread + i) % masks.size()];
        futures[t].push_back(service.Submit(std::move(request)));
      }
    });
  }
  for (auto& submitter : submitters) submitter.join();
  int64_t answered = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      ImputationResponse response = future.get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      ++answered;
    }
  }
  profiler_churn.join();
  done = true;
  scraper.join();
  service.Shutdown();
  EXPECT_EQ(answered, 2 * submits_per_thread);
  EXPECT_EQ(recorder.total_recorded(), 2 * submits_per_thread);
  EXPECT_FALSE(obs::CpuProfiler::IsRunning());
}

// ---- Chunk cache: loads vs. Clear -------------------------------------------

TEST(RaceStressTest, ChunkCacheLoadClearThrash) {
  storage::ChunkCache cache(/*byte_budget=*/4096);  // ~8 512-byte chunks.
  const int readers = 3;
  const int iters = 300 * StressScale();
  std::atomic<bool> done{false};
  std::thread clearer([&] {
    while (!done.load()) {
      cache.Clear();
      storage::ChunkCache::Stats stats = cache.stats();
      EXPECT_GE(stats.bytes_cached, 0);
      EXPECT_LE(stats.bytes_cached, cache.byte_budget());
    }
  });
  std::atomic<int64_t> calls{0};
  ParallelFor(readers, readers, [&](int r) {
    for (int i = 0; i < iters; ++i) {
      const int64_t key = (r * 7 + i) % 32;
      StatusOr<storage::ChunkCache::ChunkPtr> chunk =
          cache.GetOrLoad(key, [key]() -> StatusOr<Matrix> {
            return Matrix(8, 8, static_cast<double>(key));
          });
      ASSERT_TRUE(chunk.ok());
      // A race that mixed up entries would hand back the wrong payload.
      EXPECT_EQ((*chunk.value())(0, 0), static_cast<double>(key));
      calls.fetch_add(1);
    }
  });
  done = true;
  clearer.join();
  storage::ChunkCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, calls.load());
  EXPECT_LE(stats.peak_bytes, cache.byte_budget());
}

// ---- QualityMonitor: observe / self-score / snapshot / reload ---------------

// Quality monitoring rides every request, so its lock discipline gets the
// same treatment as the hot path: two threads folding inputs and running
// masked self-scoring, a registry reloader swapping the model pointer
// (which resets live state mid-stream), and a snapshot scraper reading
// everything concurrently. Invariants: snapshots are internally
// consistent at every instant, and nothing tears or deadlocks.
TEST(RaceStressTest, QualityMonitorObserveSelfScoreSnapshotStorm) {
  const SharedModel& shared = GetSharedModel();
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.LoadFromFile("m", shared.checkpoint_path).ok());

  serve::QualityMonitorOptions qopts;
  qopts.selfscore_every = 3;  // Fire often so rounds overlap observes.
  qopts.selfscore_history = 8;
  serve::QualityMonitor monitor(qopts);

  const std::vector<Mask> masks = DistinctMasks(6);
  const int observes_per_thread = 40 * StressScale();
  const int reloads = 10 * StressScale();
  std::atomic<bool> done{false};

  std::thread observers[2];
  for (int t = 0; t < 2; ++t) {
    observers[t] = std::thread([&, t] {
      for (int i = 0; i < observes_per_thread; ++i) {
        // Re-fetch per iteration: the reloader swaps the registered
        // model underneath us, and a changed pointer must reset the
        // monitor's live state rather than corrupt it.
        const TrainedDeepMvi* model = registry.Get("m");
        ASSERT_NE(model, nullptr);
        const Mask& mask = masks[(t * observes_per_thread + i) %
                                 masks.size()];
        monitor.ObserveInput("m", model, *shared.data, mask);
        if (monitor.SelfScoreDue("m")) {
          monitor.SelfScore("m", model, shared.data, mask,
                            /*seed=*/static_cast<uint64_t>(t * 1000 + i),
                            "race-" + std::to_string(i));
        }
      }
    });
  }
  std::thread reloader([&] {
    for (int i = 0; i < reloads; ++i) {
      ASSERT_TRUE(
          registry.LoadFromFile("m", shared.checkpoint_path).ok());
    }
  });
  std::thread scraper([&] {
    while (!done.load()) {
      serve::QualitySnapshot snapshot = monitor.Snapshot();
      ASSERT_LE(snapshot.models.size(), 1u);
      if (snapshot.models.empty()) continue;
      const serve::ModelQualitySnapshot& m = snapshot.models[0];
      EXPECT_EQ(m.model, "m");
      EXPECT_TRUE(m.has_reference);
      EXPECT_GE(m.requests_observed, 0);
      EXPECT_GE(m.cells_observed, 0);
      EXPECT_GE(m.input_missing_rate, 0.0);
      EXPECT_LE(m.input_missing_rate, 1.0);
      EXPECT_GE(m.drift_score, 0.0);
      EXPECT_GE(m.selfscore_rounds, 0);
      EXPECT_LE(m.selfscore_history.size(),
                static_cast<size_t>(qopts.selfscore_history));
      for (const serve::SelfScoreRecord& record : m.selfscore_history) {
        EXPECT_GE(record.cells, 0);
        EXPECT_GE(record.rmse, record.mae);
      }
    }
  });

  for (auto& observer : observers) observer.join();
  reloader.join();
  done = true;
  scraper.join();

  serve::QualitySnapshot final_snapshot = monitor.Snapshot();
  ASSERT_EQ(final_snapshot.models.size(), 1u);
  const serve::ModelQualitySnapshot& m = final_snapshot.models[0];
  // Reloads reset live counters, so the exact totals depend on thread
  // interleaving; they must still be coherent — cells split cleanly into
  // observed + missing, and live traffic matches the served dataset.
  EXPECT_TRUE(m.has_reference);
  EXPECT_GE(m.requests_observed, 1);
  EXPECT_LE(m.requests_observed, 2 * observes_per_thread);
  const int64_t cells_per_request =
      static_cast<int64_t>(shared.data->num_series()) *
      shared.data->num_times();
  EXPECT_EQ((m.cells_observed + m.cells_missing) % cells_per_request, 0);
  EXPECT_GE(final_snapshot.max_drift_score, 0.0);
}

}  // namespace
}  // namespace deepmvi
