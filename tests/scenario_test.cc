#include <gtest/gtest.h>

#include <set>

#include "scenario/scenarios.h"

namespace deepmvi {
namespace {

TEST(ScenarioTest, McarBlockSizeAndFraction) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMcar;
  config.percent_incomplete = 0.5;
  config.missing_fraction = 0.1;
  config.block_size = 10;
  config.seed = 1;
  Mask mask = GenerateScenario(config, 10, 1000);

  // Exactly 5 series should be incomplete, each missing ~10%.
  int incomplete = 0;
  for (int r = 0; r < 10; ++r) {
    int missing = 0;
    for (int t = 0; t < 1000; ++t) missing += mask.missing(r, t);
    if (missing > 0) {
      ++incomplete;
      EXPECT_NEAR(missing, 100, 10) << "series " << r;
    }
  }
  EXPECT_EQ(incomplete, 5);

  // Blocks have the configured length.
  auto lengths = mask.MissingBlockLengths();
  for (int len : lengths) EXPECT_LE(len, 2 * config.block_size);
}

TEST(ScenarioTest, McarDeterministicPerSeed) {
  ScenarioConfig config;
  config.seed = 42;
  Mask a = GenerateScenario(config, 8, 300);
  Mask b = GenerateScenario(config, 8, 300);
  EXPECT_TRUE(a == b);
  config.seed = 43;
  Mask c = GenerateScenario(config, 8, 300);
  EXPECT_FALSE(a == c);
}

TEST(ScenarioTest, MissDisjBlocksAreDisjoint) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissDisj;
  config.percent_incomplete = 1.0;
  const int n = 8, t_len = 400;
  Mask mask = GenerateScenario(config, n, t_len);
  // Each time step is missing in at most one series.
  for (int t = 0; t < t_len; ++t) {
    int missing_count = 0;
    for (int r = 0; r < n; ++r) missing_count += mask.missing(r, t);
    EXPECT_LE(missing_count, 1) << "t=" << t;
  }
  // Series i misses exactly [i*T/N, (i+1)*T/N).
  const int block = t_len / n;
  EXPECT_TRUE(mask.missing(2, 2 * block));
  EXPECT_TRUE(mask.missing(2, 3 * block - 1));
  EXPECT_TRUE(mask.available(2, 3 * block));
}

TEST(ScenarioTest, MissOverBlocksOverlapNeighbours) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissOver;
  config.percent_incomplete = 1.0;
  const int n = 5, t_len = 500;
  Mask mask = GenerateScenario(config, n, t_len);
  const int block = t_len / n;
  // Series 1 misses [block, 3*block): overlaps series 2's [2b, 4b).
  EXPECT_TRUE(mask.missing(1, block));
  EXPECT_TRUE(mask.missing(1, 3 * block - 1));
  EXPECT_TRUE(mask.missing(2, 2 * block));
  // Overlap region: both series missing at t in [2b, 3b).
  EXPECT_TRUE(mask.missing(1, 2 * block + 1));
  // Last series keeps block size T/N (runs to the end of the series).
  EXPECT_TRUE(mask.missing(4, 4 * block));
  EXPECT_TRUE(mask.missing(4, t_len - 1));
}

TEST(ScenarioTest, BlackoutCoversAllSeriesSameRange) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kBlackout;
  config.block_size = 50;
  const int n = 6, t_len = 1000;
  Mask mask = GenerateScenario(config, n, t_len);
  const int t0 = 50;  // 5% of 1000.
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(mask.available(r, t0 - 1));
    EXPECT_TRUE(mask.missing(r, t0));
    EXPECT_TRUE(mask.missing(r, t0 + 49));
    EXPECT_TRUE(mask.available(r, t0 + 50));
  }
  EXPECT_EQ(mask.CountMissing(), n * 50);
}

TEST(ScenarioTest, MissPointAffectsAllSeries) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissPoint;
  config.missing_fraction = 0.1;
  config.block_size = 1;
  Mask mask = GenerateScenario(config, 10, 500);
  for (int r = 0; r < 10; ++r) {
    int missing = 0;
    for (int t = 0; t < 500; ++t) missing += mask.missing(r, t);
    EXPECT_GT(missing, 0) << "series " << r;
  }
}

TEST(ScenarioTest, MissPointBlockSizeOne) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissPoint;
  config.missing_fraction = 0.05;
  config.block_size = 1;
  config.seed = 5;
  Mask mask = GenerateScenario(config, 4, 400);
  // With block size 1 all runs have length 1 (unless two land adjacent).
  auto lengths = mask.MissingBlockLengths();
  int singles = 0;
  for (int len : lengths) singles += (len <= 2);
  EXPECT_GT(static_cast<double>(singles) / lengths.size(), 0.8);
}

TEST(ScenarioTest, Names) {
  EXPECT_EQ(ScenarioName(ScenarioKind::kMcar), "MCAR");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMissDisj), "MissDisj");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMissOver), "MissOver");
  EXPECT_EQ(ScenarioName(ScenarioKind::kBlackout), "Blackout");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMissPoint), "MissPoint");
  EXPECT_EQ(HeadlineScenarios().size(), 4u);
}

// Property sweep: every scenario kind at several sizes produces a valid
// non-trivial mask that retains some available data.
class ScenarioSweep
    : public ::testing::TestWithParam<std::tuple<ScenarioKind, int, int>> {};

TEST_P(ScenarioSweep, ProducesValidMask) {
  const auto [kind, n, t_len] = GetParam();
  ScenarioConfig config;
  config.kind = kind;
  config.percent_incomplete = 1.0;
  config.block_size = std::min(10, t_len / 4);
  config.seed = 9;
  Mask mask = GenerateScenario(config, n, t_len);
  EXPECT_GT(mask.CountMissing(), 0);
  EXPECT_GT(mask.CountAvailable(), 0);
  EXPECT_EQ(mask.rows(), n);
  EXPECT_EQ(mask.cols(), t_len);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, ScenarioSweep,
    ::testing::Combine(
        ::testing::Values(ScenarioKind::kMcar, ScenarioKind::kMissDisj,
                          ScenarioKind::kMissOver, ScenarioKind::kBlackout,
                          ScenarioKind::kMissPoint),
        ::testing::Values(2, 10, 33), ::testing::Values(60, 500)));

}  // namespace
}  // namespace deepmvi
