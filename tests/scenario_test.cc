#include <gtest/gtest.h>

#include <set>

#include "scenario/scenarios.h"

namespace deepmvi {
namespace {

TEST(ScenarioTest, McarBlockSizeAndFraction) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMcar;
  config.percent_incomplete = 0.5;
  config.missing_fraction = 0.1;
  config.block_size = 10;
  config.seed = 1;
  Mask mask = GenerateScenario(config, 10, 1000);

  // Exactly 5 series should be incomplete, each missing ~10%.
  int incomplete = 0;
  for (int r = 0; r < 10; ++r) {
    int missing = 0;
    for (int t = 0; t < 1000; ++t) missing += mask.missing(r, t);
    if (missing > 0) {
      ++incomplete;
      EXPECT_NEAR(missing, 100, 10) << "series " << r;
    }
  }
  EXPECT_EQ(incomplete, 5);

  // Blocks have the configured length.
  auto lengths = mask.MissingBlockLengths();
  for (int len : lengths) EXPECT_LE(len, 2 * config.block_size);
}

TEST(ScenarioTest, McarDeterministicPerSeed) {
  ScenarioConfig config;
  config.seed = 42;
  Mask a = GenerateScenario(config, 8, 300);
  Mask b = GenerateScenario(config, 8, 300);
  EXPECT_TRUE(a == b);
  config.seed = 43;
  Mask c = GenerateScenario(config, 8, 300);
  EXPECT_FALSE(a == c);
}

TEST(ScenarioTest, MissDisjBlocksAreDisjoint) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissDisj;
  config.percent_incomplete = 1.0;
  const int n = 8, t_len = 400;
  Mask mask = GenerateScenario(config, n, t_len);
  // Each time step is missing in at most one series.
  for (int t = 0; t < t_len; ++t) {
    int missing_count = 0;
    for (int r = 0; r < n; ++r) missing_count += mask.missing(r, t);
    EXPECT_LE(missing_count, 1) << "t=" << t;
  }
  // Series i misses exactly [i*T/N, (i+1)*T/N).
  const int block = t_len / n;
  EXPECT_TRUE(mask.missing(2, 2 * block));
  EXPECT_TRUE(mask.missing(2, 3 * block - 1));
  EXPECT_TRUE(mask.available(2, 3 * block));
}

TEST(ScenarioTest, MissOverBlocksOverlapNeighbours) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissOver;
  config.percent_incomplete = 1.0;
  const int n = 5, t_len = 500;
  Mask mask = GenerateScenario(config, n, t_len);
  const int block = t_len / n;
  // Series 1 misses [block, 3*block): overlaps series 2's [2b, 4b).
  EXPECT_TRUE(mask.missing(1, block));
  EXPECT_TRUE(mask.missing(1, 3 * block - 1));
  EXPECT_TRUE(mask.missing(2, 2 * block));
  // Overlap region: both series missing at t in [2b, 3b).
  EXPECT_TRUE(mask.missing(1, 2 * block + 1));
  // Last series keeps block size T/N (runs to the end of the series).
  EXPECT_TRUE(mask.missing(4, 4 * block));
  EXPECT_TRUE(mask.missing(4, t_len - 1));
}

TEST(ScenarioTest, BlackoutCoversAllSeriesSameRange) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kBlackout;
  config.block_size = 50;
  const int n = 6, t_len = 1000;
  Mask mask = GenerateScenario(config, n, t_len);
  const int t0 = 50;  // 5% of 1000.
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(mask.available(r, t0 - 1));
    EXPECT_TRUE(mask.missing(r, t0));
    EXPECT_TRUE(mask.missing(r, t0 + 49));
    EXPECT_TRUE(mask.available(r, t0 + 50));
  }
  EXPECT_EQ(mask.CountMissing(), n * 50);
}

TEST(ScenarioTest, MissPointAffectsAllSeries) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissPoint;
  config.missing_fraction = 0.1;
  config.block_size = 1;
  Mask mask = GenerateScenario(config, 10, 500);
  for (int r = 0; r < 10; ++r) {
    int missing = 0;
    for (int t = 0; t < 500; ++t) missing += mask.missing(r, t);
    EXPECT_GT(missing, 0) << "series " << r;
  }
}

TEST(ScenarioTest, MissPointBlockSizeOne) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMissPoint;
  config.missing_fraction = 0.05;
  config.block_size = 1;
  config.seed = 5;
  Mask mask = GenerateScenario(config, 4, 400);
  // With block size 1 all runs have length 1 (unless two land adjacent).
  auto lengths = mask.MissingBlockLengths();
  int singles = 0;
  for (int len : lengths) singles += (len <= 2);
  EXPECT_GT(static_cast<double>(singles) / lengths.size(), 0.8);
}

TEST(ScenarioTest, Names) {
  EXPECT_EQ(ScenarioName(ScenarioKind::kMcar), "MCAR");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMissDisj), "MissDisj");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMissOver), "MissOver");
  EXPECT_EQ(ScenarioName(ScenarioKind::kBlackout), "Blackout");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMissPoint), "MissPoint");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMultiBlackout), "MultiBlackout");
  EXPECT_EQ(ScenarioName(ScenarioKind::kMnar), "MNAR");
  EXPECT_EQ(ScenarioName(ScenarioKind::kDrift), "Drift");
  EXPECT_EQ(HeadlineScenarios().size(), 4u);
}

TEST(ScenarioTest, OnlyMnarNeedsValues) {
  EXPECT_TRUE(ScenarioNeedsValues(ScenarioKind::kMnar));
  EXPECT_FALSE(ScenarioNeedsValues(ScenarioKind::kMcar));
  EXPECT_FALSE(ScenarioNeedsValues(ScenarioKind::kMultiBlackout));
  EXPECT_FALSE(ScenarioNeedsValues(ScenarioKind::kDrift));
}

TEST(ScenarioTest, MultiBlackoutSingleWindowIsOneBand) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMultiBlackout;
  config.num_blackouts = 1;
  config.series_span = 0.5;
  config.block_size = 20;
  config.seed = 3;
  const int n = 8, t_len = 200;
  Mask mask = GenerateScenario(config, n, t_len);
  // One window = one contiguous band of span x block_size cells.
  EXPECT_EQ(mask.CountMissing(), 4 * 20);
  int rows_hit = 0;
  for (int r = 0; r < n; ++r) {
    int missing = 0, t_first = -1, t_last = -1;
    for (int t = 0; t < t_len; ++t) {
      if (!mask.missing(r, t)) continue;
      ++missing;
      if (t_first < 0) t_first = t;
      t_last = t;
    }
    if (missing == 0) continue;
    ++rows_hit;
    EXPECT_EQ(missing, 20) << "series " << r;
    EXPECT_EQ(t_last - t_first + 1, 20) << "series " << r;
  }
  EXPECT_EQ(rows_hit, 4);
}

TEST(ScenarioTest, MultiBlackoutDeterministicPerSeedAndMayOverlap) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMultiBlackout;
  config.num_blackouts = 6;
  config.block_size = 30;
  config.seed = 17;
  Mask a = GenerateScenario(config, 10, 120);
  Mask b = GenerateScenario(config, 10, 120);
  EXPECT_TRUE(a == b);
  config.seed = 18;
  Mask c = GenerateScenario(config, 10, 120);
  EXPECT_FALSE(a == c);
  // Six 5x30 windows on a 10x120 grid must collide somewhere: strictly
  // fewer missing cells than windows x window area proves overlap is
  // allowed rather than resampled away.
  EXPECT_GT(a.CountMissing(), 0);
  EXPECT_LT(a.CountMissing(), 6 * 5 * 30);
}

TEST(ScenarioTest, MnarTargetsHighValues) {
  // Values ramp 0..T-1 in every series, so the 0.8-quantile threshold
  // sits near 0.8 * T and missing cells must concentrate up there.
  const int n = 6, t_len = 400;
  Matrix values(n, t_len);
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) values(r, t) = t;
  }
  ScenarioConfig config;
  config.kind = ScenarioKind::kMnar;
  config.percent_incomplete = 1.0;
  config.missing_fraction = 0.1;
  config.mnar_quantile = 0.8;
  config.seed = 21;
  Mask mask = GenerateScenarioForData(config, values);

  double missing_sum = 0.0, total_sum = 0.0;
  int missing_count = 0;
  for (int r = 0; r < n; ++r) {
    int row_missing = 0;
    for (int t = 0; t < t_len; ++t) {
      total_sum += values(r, t);
      if (mask.missing(r, t)) {
        missing_sum += values(r, t);
        ++missing_count;
        ++row_missing;
      }
    }
    EXPECT_GT(row_missing, 0) << "series " << r;
    // Block placement never overshoots the per-series budget.
    EXPECT_LE(row_missing, static_cast<int>(0.1 * t_len + 0.5)) << r;
  }
  ASSERT_GT(missing_count, 0);
  const double missing_mean = missing_sum / missing_count;
  const double overall_mean = total_sum / (n * t_len);
  EXPECT_GT(missing_mean, 1.5 * overall_mean)
      << "MNAR mask is not value-correlated";
}

TEST(ScenarioTest, MnarDeterministicPerSeed) {
  Matrix values(5, 200);
  Rng rng(7);
  for (int r = 0; r < 5; ++r) {
    for (int t = 0; t < 200; ++t) values(r, t) = rng.Gaussian();
  }
  ScenarioConfig config;
  config.kind = ScenarioKind::kMnar;
  config.percent_incomplete = 1.0;
  config.seed = 33;
  Mask a = GenerateScenarioForData(config, values);
  Mask b = GenerateScenarioForData(config, values);
  EXPECT_TRUE(a == b);
  config.seed = 34;
  EXPECT_FALSE(a == GenerateScenarioForData(config, values));
}

TEST(ScenarioTest, DriftTransformSawtoothResetsAtJumps) {
  const int n = 2, t_len = 100;
  Matrix values(n, t_len);
  Rng rng(13);
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) values(r, t) = rng.Gaussian();
  }
  ScenarioConfig config;
  config.kind = ScenarioKind::kDrift;
  config.drift_rate = 2.0;
  config.recalibration_period = 25;
  const std::vector<int> jumps = DriftRecalibrationTimes(config, t_len);
  ASSERT_EQ(jumps.size(), 3u);
  EXPECT_EQ(jumps[0], 25);
  EXPECT_EQ(jumps[2], 75);

  Matrix drifted = ApplyScenarioTransform(config, values);
  for (int r = 0; r < n; ++r) {
    // Recalibration zeroes the drift: at every jump (and t = 0) the
    // transformed value equals the original.
    EXPECT_DOUBLE_EQ(drifted(r, 0), values(r, 0));
    for (int jump : jumps) {
      EXPECT_DOUBLE_EQ(drifted(r, jump), values(r, jump)) << "jump " << jump;
    }
    // Drift accumulates monotonically within a period.
    const double early = drifted(r, 1) - values(r, 1);
    const double late = drifted(r, 24) - values(r, 24);
    EXPECT_GT(early, 0.0);
    EXPECT_GT(late, early);
  }
  // Non-drift kinds leave the values untouched.
  config.kind = ScenarioKind::kMcar;
  Matrix untouched = ApplyScenarioTransform(config, values);
  for (int t = 0; t < t_len; ++t) {
    ASSERT_DOUBLE_EQ(untouched(0, t), values(0, t));
  }
}

TEST(ScenarioTest, DriftMaskStraddlesEveryJump) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kDrift;
  config.percent_incomplete = 1.0;
  config.block_size = 8;
  config.recalibration_period = 30;
  config.seed = 5;
  const int n = 4, t_len = 120;
  Mask mask = GenerateScenario(config, n, t_len);
  const std::vector<int> jumps = DriftRecalibrationTimes(config, t_len);
  ASSERT_FALSE(jumps.empty());
  for (int r = 0; r < n; ++r) {
    for (int jump : jumps) {
      EXPECT_TRUE(mask.missing(r, jump))
          << "series " << r << " jump " << jump;
      EXPECT_TRUE(mask.missing(r, jump - 1))
          << "series " << r << " jump " << jump;
    }
  }
  // The blocks are local to the jumps — most of the series stays visible.
  EXPECT_LT(mask.MissingFraction(), 0.5);
}

// Property sweep: every scenario kind at several sizes produces a valid
// non-trivial mask that retains some available data.
class ScenarioSweep
    : public ::testing::TestWithParam<std::tuple<ScenarioKind, int, int>> {};

TEST_P(ScenarioSweep, ProducesValidMask) {
  const auto [kind, n, t_len] = GetParam();
  ScenarioConfig config;
  config.kind = kind;
  config.percent_incomplete = 1.0;
  config.block_size = std::min(10, t_len / 4);
  config.seed = 9;
  Mask mask = GenerateScenario(config, n, t_len);
  EXPECT_GT(mask.CountMissing(), 0);
  EXPECT_GT(mask.CountAvailable(), 0);
  EXPECT_EQ(mask.rows(), n);
  EXPECT_EQ(mask.cols(), t_len);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, ScenarioSweep,
    ::testing::Combine(
        ::testing::Values(ScenarioKind::kMcar, ScenarioKind::kMissDisj,
                          ScenarioKind::kMissOver, ScenarioKind::kBlackout,
                          ScenarioKind::kMissPoint,
                          ScenarioKind::kMultiBlackout, ScenarioKind::kDrift),
        ::testing::Values(2, 10, 33), ::testing::Values(60, 500)));

}  // namespace
}  // namespace deepmvi
