// Tests for the train-once/serve-many split: TrainedDeepMvi (Fit /
// Predict / Save / Load) and the src/serve layer (registry, micro-batching
// service, telemetry, workload helpers). The central contract is
// determinism: Predict consumes no randomness, so repeated calls, loaded
// checkpoints, and any thread count / batching schedule must all produce
// bit-identical matrices.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/simple.h"
#include "core/deepmvi.h"
#include "core/quality_profile.h"
#include "obs/flight_recorder.h"
#include "scenario/scenarios.h"
#include "serve/quality_monitor.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/response_cache.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using testutil::ExpectMatricesBitIdentical;
using testutil::MakeSeasonalCase;
using testutil::SeasonalCase;
using testutil::TempPath;
using testutil::TinyDeepMviConfig;

/// One small trained model shared by the expensive suites. Fit is the slow
/// part; everything downstream is inference.
struct TrainedCase {
  SeasonalCase data_case;
  TrainedDeepMvi model;
};
TrainedCase MakeTrainedCase(uint64_t seed = 31) {
  TrainedCase out{MakeSeasonalCase(seed, 5, 120), TrainedDeepMvi()};
  DeepMviConfig config = TinyDeepMviConfig();
  config.seed = 77;
  DeepMviImputer imputer(config);
  out.model = imputer.Fit(out.data_case.data, out.data_case.mask);
  return out;
}

// ---- TrainedDeepMvi ---------------------------------------------------------

TEST(TrainedDeepMviTest, FitOncePredictTwiceIsBitIdentical) {
  TrainedCase c = MakeTrainedCase();
  Matrix first = c.model.Predict(c.data_case.data, c.data_case.mask);
  Matrix second = c.model.Predict(c.data_case.data, c.data_case.mask);
  ExpectMatricesBitIdentical(first, second, "repeated Predict");
}

TEST(TrainedDeepMviTest, ImputeEqualsFitPlusPredict) {
  // The historical single-shot API must be exactly the composition, so the
  // determinism contract in core_test keeps covering the split pipeline.
  SeasonalCase c = MakeSeasonalCase(32, 5, 120);
  DeepMviConfig config = TinyDeepMviConfig();
  config.seed = 78;

  DeepMviImputer one_shot(config);
  Matrix via_impute = one_shot.Impute(c.data, c.mask);

  DeepMviImputer split(config);
  TrainedDeepMvi model = split.Fit(c.data, c.mask);
  Matrix via_predict = model.Predict(c.data, c.mask);

  ExpectMatricesBitIdentical(via_impute, via_predict, "Impute vs Fit+Predict");
}

TEST(TrainedDeepMviTest, PredictOnNewMissingPattern) {
  // Serve-time queries hide blocks the training mask never saw.
  TrainedCase c = MakeTrainedCase();
  Mask query = c.data_case.mask;
  query.SetMissingRange(2, 40, 60);
  Matrix out = c.model.Predict(c.data_case.data, query);
  EXPECT_TRUE(out.AllFinite());
  for (int t = 0; t < out.cols(); ++t) {
    if (query.available(2, t)) {
      EXPECT_EQ(out(2, t), c.data_case.data.values()(2, t));
    }
  }
}

TEST(TrainedDeepMviTest, SaveLoadPredictIsBitIdentical) {
  TrainedCase c = MakeTrainedCase();
  Matrix direct = c.model.Predict(c.data_case.data, c.data_case.mask);

  const std::string path = TempPath("trained_deepmvi.dmvi");
  Status saved = c.model.Save(path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  StatusOr<TrainedDeepMvi> loaded = TrainedDeepMvi::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_parameters(), c.model.num_parameters());
  EXPECT_EQ(loaded->config().window, c.model.config().window);
  Matrix from_checkpoint = loaded->Predict(c.data_case.data, c.data_case.mask);
  ExpectMatricesBitIdentical(direct, from_checkpoint, "after Save/Load");
  std::remove(path.c_str());
}

TEST(TrainedDeepMviTest, LoadRejectsCorruptAndTruncatedCheckpoints) {
  TrainedCase c = MakeTrainedCase();
  const std::string path = TempPath("trained_corrupt.dmvi");
  ASSERT_TRUE(c.model.Save(path).ok());

  {  // Corrupt magic.
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_GT(bytes.size(), 100u);
    const std::string corrupt_path = TempPath("trained_badmagic.dmvi");
    bytes[1] = 'X';
    std::ofstream(corrupt_path, std::ios::binary) << bytes;
    StatusOr<TrainedDeepMvi> corrupt = TrainedDeepMvi::Load(corrupt_path);
    EXPECT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);
    std::remove(corrupt_path.c_str());

    // Truncate at several depths (header, config, parameter bodies).
    for (size_t cut : {size_t{3}, size_t{20}, size_t{70}, bytes.size() / 2}) {
      const std::string cut_path = TempPath("trained_truncated.dmvi");
      std::ofstream(cut_path, std::ios::binary) << bytes.substr(0, cut);
      StatusOr<TrainedDeepMvi> truncated = TrainedDeepMvi::Load(cut_path);
      EXPECT_FALSE(truncated.ok()) << "cut at " << cut;
      std::remove(cut_path.c_str());
    }
  }
  std::remove(path.c_str());
}

TEST(TrainedDeepMviTest, ValidateInputRejectsWrongShapes) {
  TrainedCase c = MakeTrainedCase();
  EXPECT_TRUE(
      c.model.ValidateInput(c.data_case.data, c.data_case.mask).ok());
  // Wrong series count.
  SeasonalCase other = MakeSeasonalCase(33, 7, 120);
  EXPECT_FALSE(c.model.ValidateInput(other.data, other.mask).ok());
  // Mask shape disagrees with data.
  EXPECT_FALSE(c.model.ValidateInput(c.data_case.data, Mask(5, 60)).ok());
  // Untrained model.
  EXPECT_FALSE(
      TrainedDeepMvi().ValidateInput(c.data_case.data, c.data_case.mask).ok());
}

TEST(TrainedDeepMviTest, RejectsSeriesShorterThanOneWindow) {
  // Below one window the chunk walk degenerates and cells would come back
  // unimputed; ValidateInput must refuse instead of silently succeeding,
  // and the service must surface that as an error response. Between one
  // and two windows imputation still works (transformer contributes
  // nothing, local/kernel signals carry it) — the historical behavior.
  TrainedCase c = MakeTrainedCase();
  const int window = c.model.config().window;
  ASSERT_GT(window, 1);
  const int num_series = c.data_case.data.num_series();

  DataTensor short_data =
      DataTensor::FromMatrix(Matrix(num_series, window - 1, 1.0));
  Mask short_mask(num_series, window - 1);
  short_mask.set_missing(0, 0);
  EXPECT_FALSE(c.model.ValidateInput(short_data, short_mask).ok());

  DataTensor one_window =
      DataTensor::FromMatrix(Matrix(num_series, window, 1.0));
  Mask one_window_mask(num_series, window);
  one_window_mask.set_missing(0, window / 2);
  EXPECT_TRUE(c.model.ValidateInput(one_window, one_window_mask).ok());
  EXPECT_TRUE(c.model.Predict(one_window, one_window_mask).AllFinite());

  serve::ImputationService service;
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());
  serve::ImputationRequest request;
  request.model = "m";
  request.data = std::make_shared<const DataTensor>(short_data);
  request.mask = short_mask;
  serve::ImputationResponse response = service.Impute(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST(TrainedDeepMviTest, DegenerateSingleStepDatasetStillImputes) {
  // The pre-split Impute() tolerated pathological shapes like 3 series x
  // 1 step (window shrinks to 1); the Fit/Predict composition must not
  // regress that into an abort.
  DataTensor tiny = DataTensor::FromMatrix(Matrix(3, 1, 2.5));
  Mask mask(3, 1);
  mask.set_missing(1, 0);
  DeepMviConfig config = TinyDeepMviConfig();
  config.max_epochs = 1;
  Matrix out = DeepMviImputer(config).Impute(tiny, mask);
  EXPECT_TRUE(out.AllFinite());
  EXPECT_EQ(out(0, 0), 2.5);
  EXPECT_EQ(out(2, 0), 2.5);
}

// ---- Imputer state hygiene (regression for cross-call leakage) --------------

TEST(DeepMviImputerTest, TrainStatsResetAtTopOfEveryCall) {
  // First call: long blocks force window 20. Second call on small-block
  // data must report window 10 and its own epoch count, not remnants of
  // the first call — train_stats_ is reset at the top of Fit/Impute.
  SyntheticConfig data_config;
  data_config.num_series = 4;
  data_config.length = 600;
  data_config.seed = 34;
  Matrix x = GenerateSeriesMatrix(data_config);
  DataTensor big = DataTensor::FromMatrix(x);
  Mask big_mask(4, 600);
  big_mask.SetMissingRange(0, 100, 250);  // Mean block 150 -> window 20.

  DeepMviConfig config = TinyDeepMviConfig();
  config.max_epochs = 1;
  DeepMviImputer reused(config);
  reused.Impute(big, big_mask);
  ASSERT_EQ(reused.train_stats().window_used, 20);

  SeasonalCase small = MakeSeasonalCase(35, 5, 120);
  reused.Impute(small.data, small.mask);
  DeepMviImputer fresh(config);
  fresh.Impute(small.data, small.mask);
  EXPECT_EQ(reused.train_stats().window_used,
            fresh.train_stats().window_used);
  EXPECT_EQ(reused.train_stats().epochs_run, fresh.train_stats().epochs_run);
  EXPECT_EQ(reused.train_stats().best_validation_loss,
            fresh.train_stats().best_validation_loss);
  EXPECT_EQ(reused.train_stats().final_train_loss,
            fresh.train_stats().final_train_loss);
}

// ---- ImputationService ------------------------------------------------------

TEST(ImputationServiceTest, UnknownModelYieldsNotFound) {
  serve::ImputationService service;
  serve::ImputationRequest request;
  request.model = "missing";
  serve::ImputationResponse response = service.Impute(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(service.telemetry().failures, 1);
}

TEST(ImputationServiceTest, BadShapeYieldsErrorResponseNotCrash) {
  TrainedCase c = MakeTrainedCase();
  serve::ImputationService service;
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());
  serve::ImputationRequest request;
  request.model = "m";
  request.data = std::make_shared<const DataTensor>(c.data_case.data);
  request.mask = Mask(2, 7);  // Nonsense shape.
  serve::ImputationResponse response = service.Impute(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST(ImputationServiceTest, RegistryListsAndSwapsModels) {
  serve::ImputationService service;
  EXPECT_EQ(service.registry().size(), 0);
  EXPECT_EQ(service.registry().Get("m"), nullptr);
  EXPECT_FALSE(
      service.registry().Register("", TrainedDeepMvi()).ok());  // Empty name.
  EXPECT_FALSE(
      service.registry().Register("m", TrainedDeepMvi()).ok());  // Untrained.

  TrainedCase c = MakeTrainedCase();
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());
  const TrainedDeepMvi* first = service.registry().Get("m");
  ASSERT_NE(first, nullptr);

  // Re-register (deployment update): old pointer must stay valid.
  TrainedCase updated = MakeTrainedCase(36);
  ASSERT_TRUE(service.registry().Register("m", std::move(updated.model)).ok());
  EXPECT_EQ(service.registry().size(), 1);
  EXPECT_NE(service.registry().Get("m"), first);
  EXPECT_GT(first->num_parameters(), 0);  // Retired, not destroyed.
  EXPECT_EQ(service.registry().Names(),
            std::vector<std::string>{std::string("m")});
}

/// The workload used by the determinism suites: distinct block queries.
std::vector<serve::ImputationRequest> MakeWorkloadRequests(
    const TrainedCase& c, int count) {
  std::vector<serve::WorkloadQuery> queries = serve::SynthesizeWorkload(
      count, /*max_block_len=*/12, c.data_case.data.num_series(),
      c.data_case.data.num_times(), /*seed=*/41);
  auto shared_data = std::make_shared<const DataTensor>(c.data_case.data);
  std::vector<serve::ImputationRequest> requests;
  requests.reserve(queries.size());
  for (const serve::WorkloadQuery& query : queries) {
    requests.push_back(
        serve::MakeQueryRequest("m", shared_data, c.data_case.mask, query));
  }
  return requests;
}

TEST(ImputationServiceTest, ConcurrentBatchesMatchSingleThreadBitForBit) {
  TrainedCase c = MakeTrainedCase();
  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 10);

  // Reference: single-threaded service, one request at a time.
  serve::ServiceConfig serial_config;
  serial_config.threads = 1;
  serve::ImputationService serial(serial_config);
  {
    TrainedCase ref = MakeTrainedCase();
    ASSERT_TRUE(serial.registry().Register("m", std::move(ref.model)).ok());
  }
  std::vector<Matrix> reference;
  for (const auto& request : requests) {
    serve::ImputationResponse response = serial.Impute(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    reference.push_back(std::move(response.imputed));
  }

  // Same queries through the parallel sync-batch path...
  serve::ServiceConfig parallel_config;
  parallel_config.threads = 4;
  serve::ImputationService parallel(parallel_config);
  ASSERT_TRUE(parallel.registry().Register("m", std::move(c.model)).ok());
  std::vector<serve::ImputationResponse> batched =
      parallel.ImputeBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ASSERT_TRUE(batched[i].status.ok());
    ExpectMatricesBitIdentical(batched[i].imputed, reference[i],
                       "ImputeBatch slot " + std::to_string(i));
  }

  // ...and through the async micro-batching path, submitted from several
  // threads at once so batches actually fuse.
  std::vector<std::future<serve::ImputationResponse>> futures(requests.size());
  {
    std::vector<std::thread> submitters;
    for (int worker = 0; worker < 2; ++worker) {
      submitters.emplace_back([&, worker] {
        for (size_t i = worker; i < requests.size(); i += 2) {
          futures[i] = parallel.Submit(requests[i]);
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::ImputationResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ExpectMatricesBitIdentical(response.imputed, reference[i],
                       "Submit slot " + std::to_string(i));
    EXPECT_GT(response.latency_seconds, 0.0);
  }

  serve::TelemetrySnapshot snap = parallel.telemetry();
  EXPECT_EQ(snap.requests, static_cast<int64_t>(2 * requests.size()));
  EXPECT_EQ(snap.failures, 0);
  EXPECT_GT(snap.batches, 0);
  EXPECT_GT(snap.cells_imputed, 0);
  EXPECT_GT(snap.latency_p95_ms, 0.0);
  EXPECT_GE(snap.latency_p95_ms, snap.latency_p50_ms);
  EXPECT_GE(snap.latency_max_ms, snap.latency_p95_ms);
}

// ---- Degradation ladder -----------------------------------------------------

TEST(ImputationServiceTest, DegradedResponsesUseFallbackAndAreMarked) {
  TrainedCase c = MakeTrainedCase();
  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 3);
  LinearInterpolationImputer fallback;
  std::vector<Matrix> expected;
  for (const auto& request : requests) {
    expected.push_back(fallback.Impute(*request.data, request.mask));
  }

  serve::ServiceConfig config;
  config.degrade_watermark = 1;
  config.threads = 2;
  serve::ImputationService service(config);
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());
  // A probe pinned far above the watermark: every Submit is admitted on
  // the degraded rung — deterministic, no timing needed.
  service.SetPressureProbe([] { return 100; });
  EXPECT_GE(service.PressureDepth(), 100);

  for (size_t i = 0; i < requests.size(); ++i) {
    serve::ImputationResponse response = service.Submit(requests[i]).get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.degraded);
    EXPECT_EQ(response.degrade_method, "LinearInterp");
    ExpectMatricesBitIdentical(response.imputed, expected[i],
                               "degraded slot " + std::to_string(i));
    EXPECT_EQ(response.cells_imputed, requests[i].mask.CountMissing());
  }
  serve::TelemetrySnapshot snap = service.telemetry();
  EXPECT_EQ(snap.degraded, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(snap.shed, 0);
  EXPECT_EQ(snap.failures, 0);
}

TEST(ImputationServiceTest, MeanDegradeMethodIsHonored) {
  TrainedCase c = MakeTrainedCase();
  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 1);
  MeanImputer fallback;
  const Matrix expected = fallback.Impute(*requests[0].data, requests[0].mask);

  serve::ServiceConfig config;
  config.degrade_watermark = 1;
  config.degrade_method = "Mean";
  serve::ImputationService service(config);
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());
  service.SetPressureProbe([] { return 100; });

  serve::ImputationResponse response = service.Submit(requests[0]).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.degrade_method, "Mean");
  ExpectMatricesBitIdentical(response.imputed, expected, "Mean fallback");
}

TEST(ImputationServiceTest, ShedBeyondWatermarkIsFailedPrecondition) {
  TrainedCase c = MakeTrainedCase();
  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 2);

  serve::ServiceConfig config;
  config.degrade_watermark = 1;
  config.shed_watermark = 50;
  serve::ImputationService service(config);
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());
  service.SetPressureProbe([] { return 100; });  // Above both rungs.

  serve::ImputationResponse response = service.Submit(requests[0]).get();
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(response.imputed.rows() == 0);
  serve::TelemetrySnapshot snap = service.telemetry();
  EXPECT_EQ(snap.shed, 1);
  EXPECT_EQ(snap.degraded, 0);
  EXPECT_EQ(snap.failures, 1);

  // Dropping the pressure below both watermarks restores full service.
  service.SetPressureProbe([] { return 0; });
  serve::ImputationResponse healthy = service.Submit(requests[1]).get();
  ASSERT_TRUE(healthy.status.ok()) << healthy.status.ToString();
  EXPECT_FALSE(healthy.degraded);
  EXPECT_TRUE(healthy.degrade_method.empty());
}

TEST(ImputationServiceTest, LadderInactiveBelowWatermarks) {
  // Watermarks configured but pressure below them: responses must be the
  // full model's, bit-identical to an unladdered service.
  TrainedCase c = MakeTrainedCase();
  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 2);
  std::vector<Matrix> expected;
  for (const auto& request : requests) {
    expected.push_back(c.model.Predict(*request.data, request.mask));
  }

  serve::ServiceConfig config;
  config.degrade_watermark = 1000;
  config.shed_watermark = 2000;
  serve::ImputationService service(config);
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    serve::ImputationResponse response = service.Submit(requests[i]).get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.degraded);
    ExpectMatricesBitIdentical(response.imputed, expected[i],
                               "below-watermark slot " + std::to_string(i));
  }
  EXPECT_EQ(service.telemetry().degraded, 0);
  EXPECT_EQ(service.telemetry().shed, 0);
}

// ---- Response cache ---------------------------------------------------------

serve::ResponseCache::CachedResponse MakeCached(int rows, int cols,
                                                double fill) {
  serve::ResponseCache::CachedResponse cached;
  cached.imputed = Matrix(rows, cols, fill);
  cached.cells_imputed = rows;
  cached.rows_touched = 1;
  return cached;
}

TEST(ResponseCacheTest, HitsMissesAndLruEvictionUnderByteBudget) {
  // Each 8x8 entry is 8*8*8 = 512 bytes + header; budget fits two.
  const int64_t entry_bytes =
      8 * 8 * static_cast<int64_t>(sizeof(double)) +
      static_cast<int64_t>(sizeof(serve::ResponseCache::CachedResponse));
  serve::ResponseCache cache(2 * entry_bytes + 16);
  const int model_a = 0, model_b = 0;  // Distinct addresses.

  EXPECT_EQ(cache.Get(&model_a, 1, 1), nullptr);  // Miss.
  cache.Put(&model_a, 1, 1, MakeCached(8, 8, 1.0));
  serve::ResponseCache::ResponsePtr hit = cache.Get(&model_a, 1, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->imputed(0, 0), 1.0);

  // Same fingerprints under another model are a different key.
  EXPECT_EQ(cache.Get(&model_b, 1, 1), nullptr);
  cache.Put(&model_b, 1, 1, MakeCached(8, 8, 2.0));
  // Different mask fingerprint is a different key too.
  EXPECT_EQ(cache.Get(&model_a, 1, 2), nullptr);

  // Budget holds two entries; inserting a third evicts the LRU (model_a's,
  // since model_b's was inserted later and model_a's was touched earlier).
  cache.Get(&model_b, 1, 1);  // model_b entry is now most recent.
  cache.Put(&model_a, 9, 9, MakeCached(8, 8, 3.0));
  serve::ResponseCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_LE(stats.bytes_cached, cache.byte_budget());
  EXPECT_EQ(cache.Get(&model_a, 1, 1), nullptr);      // Evicted.
  EXPECT_NE(cache.Get(&model_b, 1, 1), nullptr);      // Survived.
  EXPECT_NE(cache.Get(&model_a, 9, 9), nullptr);      // New entry.

  // An entry larger than the whole budget is never retained, and an
  // outstanding pointer survives Clear().
  cache.Put(&model_a, 7, 7, MakeCached(64, 64, 4.0));
  EXPECT_EQ(cache.Get(&model_a, 7, 7), nullptr);
  serve::ResponseCache::ResponsePtr pinned = cache.Get(&model_b, 1, 1);
  cache.Clear();
  EXPECT_EQ(cache.Get(&model_b, 1, 1), nullptr);
  EXPECT_EQ(pinned->imputed(0, 0), 2.0);
  EXPECT_GT(cache.stats().peak_bytes, 0);
}

TEST(ResponseCacheTest, FingerprintsSeparateDataMaskAndShape) {
  SeasonalCase a = MakeSeasonalCase(51, 4, 60);
  SeasonalCase b = MakeSeasonalCase(52, 4, 60);
  EXPECT_EQ(serve::FingerprintData(a.data), serve::FingerprintData(a.data));
  EXPECT_NE(serve::FingerprintData(a.data), serve::FingerprintData(b.data));
  EXPECT_EQ(serve::FingerprintMask(a.mask), serve::FingerprintMask(a.mask));
  Mask tweaked = a.mask;
  tweaked.set_missing(0, 0);
  EXPECT_NE(serve::FingerprintMask(a.mask), serve::FingerprintMask(tweaked));
  // Same cell count, different shape.
  EXPECT_NE(serve::FingerprintMask(Mask(2, 3)),
            serve::FingerprintMask(Mask(3, 2)));
}

TEST(ImputationServiceTest, CachedResponsesAreBitIdenticalAndCounted) {
  TrainedCase c = MakeTrainedCase();
  serve::ServiceConfig cached_config;
  cached_config.cache_mb = 16.0;
  cached_config.threads = 1;
  serve::ImputationService cached(cached_config);
  ASSERT_TRUE(cached.registry().Register("m", std::move(c.model)).ok());

  serve::ServiceConfig plain_config;
  plain_config.threads = 1;
  serve::ImputationService plain(plain_config);
  {
    TrainedCase ref = MakeTrainedCase();
    ASSERT_TRUE(plain.registry().Register("m", std::move(ref.model)).ok());
  }

  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 6);
  requests.push_back(requests[0]);  // Guaranteed repeats.
  requests.push_back(requests[1]);
  for (const serve::ImputationRequest& request : requests) {
    serve::ImputationResponse hot = cached.Impute(request);
    serve::ImputationResponse cold = plain.Impute(request);
    ASSERT_TRUE(hot.status.ok()) << hot.status.ToString();
    ExpectMatricesBitIdentical(hot.imputed, cold.imputed, "cache on vs off");
    EXPECT_EQ(hot.cells_imputed, cold.cells_imputed);
    EXPECT_EQ(hot.rows_touched, cold.rows_touched);
  }
  serve::TelemetrySnapshot snap = cached.telemetry();
  EXPECT_EQ(snap.cache_hits, 2);
  EXPECT_EQ(snap.cache_misses, 6);
  EXPECT_EQ(plain.telemetry().cache_hits + plain.telemetry().cache_misses, 0);
  ASSERT_NE(cached.response_cache(), nullptr);
  EXPECT_EQ(cached.response_cache()->stats().hits, 2);
  EXPECT_EQ(plain.response_cache(), nullptr);

  // A model swap changes the cache key (pointer identity): the same
  // request misses instead of serving the old weights' answer.
  TrainedCase swapped = MakeTrainedCase(37);
  ASSERT_TRUE(cached.registry().Register("m", std::move(swapped.model)).ok());
  ASSERT_TRUE(cached.Impute(requests[0]).status.ok());
  EXPECT_EQ(cached.telemetry().cache_misses, 7);
  EXPECT_EQ(cached.telemetry().cache_hits, 2);

  cached.Stop();  // Graceful-stop alias; destructor Shutdown stays safe.
}

TEST(ImputationServiceTest, ShutdownDrainsOutstandingFutures) {
  TrainedCase c = MakeTrainedCase();
  serve::ServiceConfig config;
  config.batch_linger_ms = 50.0;  // Long linger: Shutdown must cut it short.
  auto service = std::make_unique<serve::ImputationService>(config);
  ASSERT_TRUE(service->registry().Register("m", std::move(c.model)).ok());
  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 4);
  std::vector<std::future<serve::ImputationResponse>> futures;
  for (const auto& request : requests) {
    futures.push_back(service->Submit(request));
  }
  service.reset();  // Destructor -> Shutdown -> drain.
  for (auto& future : futures) {
    serve::ImputationResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

TEST(ImputationServiceTest, CacheThrashDuringReloadRaceNeverServesStaleBytes) {
  // A deliberately tiny cache (a couple of entries) forces constant LRU
  // eviction while submitter threads hammer Impute and a reloader thread
  // swaps the model through the checkpoint path. Model-identity keying
  // means every OK response must bit-match one of the two models' outputs
  // — never a blend, never a stale entry from the other model.
  TrainedCase c = MakeTrainedCase();
  DeepMviConfig alt_config = TinyDeepMviConfig();
  alt_config.seed = 99;  // Same data, different weights.
  DeepMviImputer alt_imputer(alt_config);
  TrainedDeepMvi model_b = alt_imputer.Fit(c.data_case.data, c.data_case.mask);

  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 8);
  std::vector<Matrix> expect_a, expect_b;
  for (const auto& request : requests) {
    expect_a.push_back(c.model.Predict(*request.data, request.mask));
    expect_b.push_back(model_b.Predict(*request.data, request.mask));
  }
  auto same_bits = [](const Matrix& x, const Matrix& y) {
    if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
    for (int r = 0; r < x.rows(); ++r) {
      for (int t = 0; t < x.cols(); ++t) {
        if (x(r, t) != y(r, t)) return false;
      }
    }
    return true;
  };
  ASSERT_FALSE(same_bits(expect_a[0], expect_b[0]))
      << "seeds 77 and 99 trained identical models; race test is vacuous";

  const std::string path_a = TempPath("reload_race_a.dmvi");
  const std::string path_b = TempPath("reload_race_b.dmvi");
  ASSERT_TRUE(c.model.Save(path_a).ok());
  ASSERT_TRUE(model_b.Save(path_b).ok());

  serve::ServiceConfig config;
  config.cache_mb = 0.01;  // ~10KB: each 5x120 matrix is 4800B, so ~2 fit.
  config.threads = 2;
  serve::ImputationService service(config);
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());

  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    int flip = 0;
    while (!stop.load()) {
      const std::string& path = (flip++ % 2 == 0) ? path_b : path_a;
      Status status = service.registry().LoadFromFile("m", path);
      ASSERT_TRUE(status.ok()) << status.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int worker = 0; worker < 3; ++worker) {
    submitters.emplace_back([&] {
      for (int iter = 0; iter < 30; ++iter) {
        const size_t i = static_cast<size_t>(iter) % requests.size();
        serve::ImputationResponse response = service.Impute(requests[i]);
        ASSERT_TRUE(response.status.ok()) << response.status.ToString();
        if (!same_bits(response.imputed, expect_a[i]) &&
            !same_bits(response.imputed, expect_b[i])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  stop.store(true);
  reloader.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "a response matched neither model's bit-exact output";
  ASSERT_NE(service.response_cache(), nullptr);
  serve::ResponseCache::Stats stats = service.response_cache()->stats();
  EXPECT_GT(stats.evictions, 0) << "cache never thrashed; budget too large";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// ---- Telemetry --------------------------------------------------------------

TEST(TelemetryTest, PercentilesAndCounters) {
  EXPECT_EQ(serve::SortedPercentile({}, 0.5), 0.0);
  EXPECT_EQ(serve::SortedPercentile({3.0}, 0.95), 3.0);
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(serve::SortedPercentile(sorted, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(serve::SortedPercentile(sorted, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(serve::SortedPercentile(sorted, 1.0), 4.0, 1e-12);

  serve::Telemetry telemetry;
  telemetry.RecordRequest(0.010, 2, 20, true);
  telemetry.RecordRequest(0.030, 1, 10, false);
  telemetry.RecordBatch(2);
  serve::TelemetrySnapshot snap = telemetry.Snapshot();
  EXPECT_EQ(snap.requests, 2);
  EXPECT_EQ(snap.failures, 1);
  EXPECT_EQ(snap.batches, 1);
  EXPECT_EQ(snap.rows_served, 3);
  EXPECT_EQ(snap.cells_imputed, 30);
  // The reservoir cross-check is exact interpolation; the histogram
  // estimate is deterministic but only bucket-accurate (within sqrt 2).
  EXPECT_NEAR(snap.reservoir_p50_ms, 20.0, 1e-9);
  EXPECT_GE(snap.latency_p50_ms, 20.0 / std::sqrt(2.0));
  EXPECT_LE(snap.latency_p50_ms, 20.0 * std::sqrt(2.0));
  EXPECT_NEAR(snap.mean_batch_size, 2.0, 1e-12);

  const std::string json = serve::TelemetryToJson(snap);
  EXPECT_NE(json.find("\"requests\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"latency_p50_ms\":"), std::string::npos);

  telemetry.Reset();
  EXPECT_EQ(telemetry.Snapshot().requests, 0);
}

TEST(TelemetryTest, DegradedAndShedCountersRoundTripThroughJson) {
  serve::Telemetry telemetry;
  EXPECT_EQ(telemetry.Snapshot().degraded, 0);
  EXPECT_EQ(telemetry.Snapshot().shed, 0);

  telemetry.RecordDegraded();
  telemetry.RecordDegraded();
  telemetry.RecordShed();
  serve::TelemetrySnapshot snap = telemetry.Snapshot();
  EXPECT_EQ(snap.degraded, 2);
  EXPECT_EQ(snap.shed, 1);

  const std::string json = serve::TelemetryToJson(snap);
  EXPECT_NE(json.find("\"degraded\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"shed\": 1"), std::string::npos);

  telemetry.Reset();
  EXPECT_EQ(telemetry.Snapshot().degraded, 0);
  EXPECT_EQ(telemetry.Snapshot().shed, 0);
}

TEST(TelemetryTest, HistogramAndReservoirPercentilesStayConsistent) {
  // The histogram is the percentile source of record; the reservoir stays
  // as a cross-check. On identical observations both are exact; on spread
  // observations the histogram must stay within its bucket-growth factor
  // of the reservoir's exact interpolation.
  serve::Telemetry uniform;
  for (int i = 0; i < 100; ++i) uniform.RecordRequest(0.025, 1, 1, true);
  serve::TelemetrySnapshot usnap = uniform.Snapshot();
  EXPECT_NEAR(usnap.latency_p50_ms, 25.0, 1e-9);
  EXPECT_NEAR(usnap.latency_p95_ms, 25.0, 1e-9);
  EXPECT_NEAR(usnap.reservoir_p95_ms, 25.0, 1e-9);

  serve::Telemetry spread;
  for (int i = 1; i <= 200; ++i) {
    spread.RecordRequest(1e-3 * static_cast<double>(i), 1, 1, true);
  }
  serve::TelemetrySnapshot snap = spread.Snapshot();
  for (const auto& [histogram_ms, reservoir_ms] :
       {std::pair<double, double>{snap.latency_p50_ms, snap.reservoir_p50_ms},
        std::pair<double, double>{snap.latency_p95_ms,
                                  snap.reservoir_p95_ms}}) {
    EXPECT_GT(reservoir_ms, 0.0);
    EXPECT_GE(histogram_ms, reservoir_ms / std::sqrt(2.0));
    EXPECT_LE(histogram_ms, reservoir_ms * std::sqrt(2.0));
  }
  // The histogram snapshot rides along for exposition.
  EXPECT_EQ(snap.latency_histogram.count, 200);
}

TEST(TelemetryTest, ResetRestartsWallClockLazily) {
  serve::Telemetry telemetry;
  // No events yet: the wall clock has not started, so an idle process
  // reports zero elapsed time and zero throughput instead of its age.
  EXPECT_EQ(telemetry.Snapshot().wall_seconds, 0.0);
  EXPECT_EQ(telemetry.Snapshot().requests_per_second, 0.0);

  telemetry.RecordRequest(0.001, 1, 1, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  serve::TelemetrySnapshot live = telemetry.Snapshot();
  EXPECT_GT(live.wall_seconds, 0.0);
  EXPECT_GT(live.requests_per_second, 0.0);

  // Reset rewinds everything including the clock; wall time stays zero
  // until the next recorded event, so post-reset throughput is derived
  // from the new epoch, not the process lifetime.
  telemetry.Reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  serve::TelemetrySnapshot idle = telemetry.Snapshot();
  EXPECT_EQ(idle.wall_seconds, 0.0);
  EXPECT_EQ(idle.requests_per_second, 0.0);
  EXPECT_EQ(idle.latency_histogram.count, 0);

  telemetry.RecordRequest(0.001, 1, 1, true);
  serve::TelemetrySnapshot restarted = telemetry.Snapshot();
  // The new epoch started at the post-reset event: well under the 20 ms
  // sleep that preceded it.
  EXPECT_LT(restarted.wall_seconds, 0.015);
  EXPECT_GT(restarted.requests_per_second, 0.0);
}

TEST(ImputationServiceTest, TracingAndMetricsDoNotChangeResponseBytes) {
  // The observability bar: running the identical workload with tracing
  // and metrics wired in must not move a single response bit.
  TrainedCase c = MakeTrainedCase();
  auto run = [&](serve::ServiceConfig config) {
    config.max_batch_size = 4;
    serve::ImputationService service(config);
    // Fit is deterministic, so a re-trained copy is the identical model.
    EXPECT_TRUE(
        service.registry().Register("default", MakeTrainedCase().model).ok());
    std::vector<Matrix> imputed;
    std::vector<std::future<serve::ImputationResponse>> futures;
    auto data = std::make_shared<const DataTensor>(c.data_case.data);
    for (int i = 0; i < 6; ++i) {
      serve::ImputationRequest request;
      request.model = "default";
      request.data = data;
      request.mask = c.data_case.mask;
      request.request_id = "req-" + std::to_string(i);
      futures.push_back(service.Submit(std::move(request)));
    }
    for (auto& future : futures) {
      serve::ImputationResponse response = future.get();
      EXPECT_TRUE(response.status.ok());
      imputed.push_back(std::move(response.imputed));
    }
    return imputed;
  };

  std::vector<Matrix> plain = run(serve::ServiceConfig());

  obs::CollectingTraceSink sink;
  obs::Tracer tracer(&sink, obs::TraceLevel::kKernel);
  obs::MetricsRegistry metrics;
  serve::ServiceConfig traced_config;
  traced_config.tracer = &tracer;
  traced_config.metrics = &metrics;
  std::vector<Matrix> traced = run(traced_config);

  ASSERT_EQ(plain.size(), traced.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ExpectMatricesBitIdentical(plain[i], traced[i], "traced vs plain");
  }
  // The traced run actually produced spans and stage observations.
  std::vector<obs::SpanRecord> records = sink.records();
  EXPECT_FALSE(records.empty());
  int process_spans = 0, wait_spans = 0;
  for (const obs::SpanRecord& record : records) {
    if (record.name == "service.process") ++process_spans;
    if (record.name == "queue.wait") ++wait_spans;
    if (record.name == "service.process") {
      EXPECT_FALSE(record.request_id.empty());
    }
  }
  EXPECT_EQ(process_spans, 6);
  EXPECT_EQ(wait_spans, 6);
  EXPECT_GT(metrics.HistogramNamed("dmvi_stage_predict_seconds", "")
                ->Snapshot()
                .count,
            0);
}

TEST(ImputationServiceTest, FlightRecorderSeesEveryOutcomeKind) {
  TrainedCase c = MakeTrainedCase();
  std::vector<serve::ImputationRequest> requests = MakeWorkloadRequests(c, 3);

  obs::FlightRecorder recorder(/*capacity=*/16,
                               /*slow_threshold_seconds=*/1e-9);
  serve::ServiceConfig config;
  config.recorder = &recorder;
  config.cache_mb = 4.0;
  config.shed_watermark = 1;
  serve::ImputationService service(config);
  ASSERT_TRUE(service.registry().Register("m", std::move(c.model)).ok());

  // Full predict, then the identical request again: a cache hit.
  requests[0].request_id = "fr-predict";
  ASSERT_TRUE(service.Impute(requests[0]).status.ok());
  requests[0].request_id = "fr-cached";
  ASSERT_TRUE(service.Impute(requests[0]).status.ok());
  // Queue path.
  requests[1].request_id = "fr-queued";
  ASSERT_TRUE(service.Submit(requests[1]).get().status.ok());
  // Failure.
  serve::ImputationRequest unknown;
  unknown.model = "missing";
  unknown.request_id = "fr-failed";
  EXPECT_FALSE(service.Impute(unknown).status.ok());
  // Shed at admission.
  service.SetPressureProbe([] { return 100; });
  requests[2].request_id = "fr-shed";
  EXPECT_EQ(service.Submit(requests[2]).get().status.code(),
            StatusCode::kFailedPrecondition);

  const std::vector<obs::RequestRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(recorder.total_recorded(), 5);
  std::map<std::string, obs::RequestRecord> by_id;
  for (const obs::RequestRecord& record : records) {
    by_id[record.request_id] = record;
  }
  const obs::RequestRecord& predicted = by_id.at("fr-predict");
  EXPECT_TRUE(predicted.ok);
  EXPECT_FALSE(predicted.cache_hit);
  EXPECT_GT(predicted.predict_seconds, 0.0);
  EXPECT_GT(predicted.cells_imputed, 0);
  EXPECT_EQ(predicted.model, "m");
  const obs::RequestRecord& cached = by_id.at("fr-cached");
  EXPECT_TRUE(cached.ok);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_DOUBLE_EQ(cached.predict_seconds, 0.0);
  const obs::RequestRecord& queued = by_id.at("fr-queued");
  EXPECT_TRUE(queued.ok);
  EXPECT_GE(queued.queue_seconds, 0.0);
  EXPECT_GE(queued.latency_seconds, queued.queue_seconds);
  const obs::RequestRecord& failed = by_id.at("fr-failed");
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.status.find("NotFound"), std::string::npos);
  const obs::RequestRecord& shed = by_id.at("fr-shed");
  EXPECT_TRUE(shed.shed);
  EXPECT_FALSE(shed.ok);
  // With a nanosecond threshold every real request is "slow".
  EXPECT_EQ(recorder.total_slow(), 5);
}

TEST(ImputationServiceTest, ProfilerAndRecorderDoNotChangeResponseBytes) {
  // PR 9's byte-identity bar: the sampling profiler and the flight
  // recorder observe the same workload the tracing/metrics bar covers,
  // and must not move a single response bit either.
  TrainedCase c = MakeTrainedCase();
  auto run = [&](serve::ServiceConfig config) {
    config.max_batch_size = 4;
    serve::ImputationService service(config);
    EXPECT_TRUE(
        service.registry().Register("default", MakeTrainedCase().model).ok());
    std::vector<Matrix> imputed;
    std::vector<std::future<serve::ImputationResponse>> futures;
    auto data = std::make_shared<const DataTensor>(c.data_case.data);
    for (int i = 0; i < 6; ++i) {
      serve::ImputationRequest request;
      request.model = "default";
      request.data = data;
      request.mask = c.data_case.mask;
      request.request_id = "req-" + std::to_string(i);
      futures.push_back(service.Submit(std::move(request)));
    }
    for (auto& future : futures) {
      serve::ImputationResponse response = future.get();
      EXPECT_TRUE(response.status.ok());
      imputed.push_back(std::move(response.imputed));
    }
    return imputed;
  };

  std::vector<Matrix> plain = run(serve::ServiceConfig());

  obs::FlightRecorder recorder;
  serve::ServiceConfig observed_config;
  observed_config.recorder = &recorder;
  const bool profiling = obs::CpuProfiler::Start().ok();
  std::vector<Matrix> observed = run(observed_config);
  if (profiling) obs::CpuProfiler::Stop();

  ASSERT_EQ(plain.size(), observed.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ExpectMatricesBitIdentical(plain[i], observed[i],
                               "profiled+recorded vs plain");
  }
  EXPECT_EQ(recorder.total_recorded(), 6);
}

// ---- Workload helpers -------------------------------------------------------

// ---- Quality monitor --------------------------------------------------------

TEST(QualityMonitorTest, MatchedInputStaysQuietDriftedInputScores) {
  TrainedCase c = MakeTrainedCase(47);
  serve::QualityMonitor monitor;

  // Matched: the training data itself flows back in.
  monitor.ObserveInput("m", &c.model, c.data_case.data, c.data_case.mask);
  serve::QualitySnapshot quiet = monitor.Snapshot();
  ASSERT_EQ(quiet.models.size(), 1u);
  EXPECT_TRUE(quiet.models[0].has_reference);
  EXPECT_EQ(quiet.models[0].requests_observed, 1);
  EXPECT_GT(quiet.models[0].series_scored, 0);
  EXPECT_LT(quiet.models[0].drift_score, 0.1) << "training data drifted?";
  EXPECT_EQ(quiet.max_drift_score, quiet.models[0].drift_score);

  // Drifted: the kDrift sensor-drift transform shifts every series by a
  // sawtooth of 2 stddevs — PSI must land in drifted territory.
  ScenarioConfig drift;
  drift.kind = ScenarioKind::kDrift;
  drift.percent_incomplete = 1.0;
  drift.drift_rate = 2.0;
  const Matrix shifted =
      ApplyScenarioTransform(drift, c.data_case.data.values());
  const DataTensor shifted_data = DataTensor::FromMatrix(shifted);
  serve::QualityMonitor fresh;
  fresh.ObserveInput("m", &c.model, shifted_data, c.data_case.mask);
  serve::QualitySnapshot drifted = fresh.Snapshot();
  ASSERT_EQ(drifted.models.size(), 1u);
  EXPECT_GT(drifted.models[0].drift_score, 0.2);
  EXPECT_GT(drifted.models[0].drift_score, quiet.models[0].drift_score);
  EXPECT_GT(drifted.models[0].drift_ks, 0.0);

  // Missing-rate accounting: available + missing covers the matrix.
  const auto& model_snapshot = drifted.models[0];
  EXPECT_EQ(model_snapshot.cells_observed + model_snapshot.cells_missing,
            static_cast<int64_t>(c.data_case.data.num_series()) *
                c.data_case.data.num_times());
  EXPECT_NEAR(model_snapshot.input_missing_rate, 0.1, 0.05);
}

TEST(QualityMonitorTest, ReloadedModelPointerResetsLiveState) {
  TrainedCase c = MakeTrainedCase(47);
  serve::QualityMonitor monitor;
  monitor.ObserveInput("m", &c.model, c.data_case.data, c.data_case.mask);
  monitor.ObserveInput("m", &c.model, c.data_case.data, c.data_case.mask);
  EXPECT_EQ(monitor.Snapshot().models[0].requests_observed, 2);

  // A different TrainedDeepMvi instance for the same name is a registry
  // reload: live distributions restart against the new reference.
  TrainedCase reloaded = MakeTrainedCase(47);
  monitor.ObserveInput("m", &reloaded.model, reloaded.data_case.data,
                       reloaded.data_case.mask);
  serve::QualitySnapshot snapshot = monitor.Snapshot();
  EXPECT_EQ(snapshot.models[0].requests_observed, 1);
}

TEST(QualityMonitorTest, SelfScoreIsDeterministicForFixedSeed) {
  TrainedCase c = MakeTrainedCase(47);
  auto data = std::make_shared<const DataTensor>(c.data_case.data);

  auto run_once = [&](uint64_t seed) {
    serve::QualityMonitor monitor;
    monitor.SelfScore("m", &c.model, data, c.data_case.mask, seed, "req-0");
    serve::QualitySnapshot snapshot = monitor.Snapshot();
    EXPECT_EQ(snapshot.models.size(), 1u);
    EXPECT_EQ(snapshot.models[0].selfscore_rounds, 1);
    EXPECT_GE(snapshot.models[0].selfscore_cells, 1);
    return snapshot.models[0];
  };
  const serve::ModelQualitySnapshot first = run_once(1234);
  const serve::ModelQualitySnapshot second = run_once(1234);
  EXPECT_EQ(first.selfscore_cells, second.selfscore_cells);
  ASSERT_EQ(first.selfscore_history.size(), 1u);
  ASSERT_EQ(second.selfscore_history.size(), 1u);
  // Bit-equal errors: same seed -> same hidden cells -> same prediction.
  EXPECT_EQ(first.selfscore_history[0].mae, second.selfscore_history[0].mae);
  EXPECT_EQ(first.selfscore_history[0].rmse,
            second.selfscore_history[0].rmse);
  EXPECT_GE(first.selfscore_history[0].mae, 0.0);
  EXPECT_GE(first.selfscore_history[0].rmse,
            first.selfscore_history[0].mae);
}

TEST(QualityMonitorTest, SelfScoreCadenceFollowsOption) {
  serve::QualityMonitorOptions options;
  options.selfscore_every = 3;
  serve::QualityMonitor monitor(options);
  std::vector<bool> due;
  due.reserve(9);
  for (int i = 0; i < 9; ++i) due.push_back(monitor.SelfScoreDue("m"));
  EXPECT_EQ(due, std::vector<bool>({false, false, true, false, false, true,
                                    false, false, true}));
  // Per-model counters: a second model has its own cadence.
  EXPECT_FALSE(monitor.SelfScoreDue("other"));
}

TEST(QualityMonitorTest, LegacyModelWithoutProfileStillSelfScores) {
  TrainedCase c = MakeTrainedCase(47);
  // Strip the trailing profile record through a save/truncate/load cycle,
  // exactly how a pre-profile checkpoint presents itself.
  const std::string path = TempPath("quality_legacy.dmvi");
  ASSERT_TRUE(c.model.Save(path).ok());
  std::ostringstream record;
  ASSERT_TRUE(
      AppendQualityProfileRecord(record, *c.model.quality_profile()).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() - record.str().size());
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  StatusOr<TrainedDeepMvi> legacy = TrainedDeepMvi::Load(path);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ASSERT_EQ(legacy->quality_profile(), nullptr);

  serve::QualityMonitor monitor;
  monitor.ObserveInput("m", &legacy.value(), c.data_case.data,
                       c.data_case.mask);
  auto data = std::make_shared<const DataTensor>(c.data_case.data);
  monitor.SelfScore("m", &legacy.value(), data, c.data_case.mask, 99,
                    "req-legacy");
  serve::QualitySnapshot snapshot = monitor.Snapshot();
  ASSERT_EQ(snapshot.models.size(), 1u);
  // No reference: drift is unscored and the snapshot-level max stays at
  // its "no model has a reference" sentinel...
  EXPECT_FALSE(snapshot.models[0].has_reference);
  EXPECT_EQ(snapshot.models[0].series_scored, 0);
  EXPECT_DOUBLE_EQ(snapshot.max_drift_score, -1.0);
  // ...but live accounting and self-scoring work regardless.
  EXPECT_EQ(snapshot.models[0].requests_observed, 1);
  EXPECT_EQ(snapshot.models[0].selfscore_rounds, 1);
}

TEST(ImputationServiceTest, QualityMonitorDoesNotChangeResponseBytes) {
  // The tentpole bar: the monitor observes, scores, and self-scores on
  // the live path, yet every served byte is identical with it on or off.
  TrainedCase c = MakeTrainedCase();
  auto run = [&](serve::ServiceConfig config) {
    config.max_batch_size = 4;
    serve::ImputationService service(config);
    EXPECT_TRUE(
        service.registry().Register("default", MakeTrainedCase().model).ok());
    std::vector<serve::ImputationRequest> requests =
        MakeWorkloadRequests(c, 12);
    std::vector<Matrix> imputed;
    for (serve::ImputationRequest& request : requests) {
      request.model = "default";
      serve::ImputationResponse response =
          service.Submit(std::move(request)).get();
      EXPECT_TRUE(response.status.ok());
      imputed.push_back(std::move(response.imputed));
    }
    return imputed;
  };

  std::vector<Matrix> plain = run(serve::ServiceConfig());

  serve::QualityMonitorOptions options;
  options.selfscore_every = 4;  // Several self-score rounds inside the run.
  serve::QualityMonitor monitor(options);
  serve::ServiceConfig monitored_config;
  monitored_config.quality = &monitor;
  std::vector<Matrix> monitored = run(monitored_config);

  ASSERT_EQ(plain.size(), monitored.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ExpectMatricesBitIdentical(plain[i], monitored[i],
                               "quality-monitored vs plain");
  }
  // The monitored run really exercised the monitor.
  serve::QualitySnapshot snapshot = monitor.Snapshot();
  ASSERT_EQ(snapshot.models.size(), 1u);
  EXPECT_EQ(snapshot.models[0].requests_observed, 12);
  EXPECT_TRUE(snapshot.models[0].has_reference);
  EXPECT_EQ(snapshot.models[0].selfscore_rounds, 3);
}

TEST(RegistryTest, ReloadInfoCountsRegistrationsAndSwaps) {
  serve::ModelRegistry registry;
  serve::ModelRegistry::ReloadInfo empty = registry.reload_info();
  EXPECT_EQ(empty.registrations, 0);
  EXPECT_EQ(empty.reloads, 0);
  EXPECT_EQ(empty.model_age_seconds, -1.0);  // Nothing registered yet.

  ASSERT_TRUE(registry.Register("a", MakeTrainedCase().model).ok());
  serve::ModelRegistry::ReloadInfo first = registry.reload_info();
  EXPECT_EQ(first.registrations, 1);
  EXPECT_EQ(first.reloads, 0);
  EXPECT_EQ(first.last_model, "a");
  EXPECT_GE(first.model_age_seconds, 0.0);

  ASSERT_TRUE(registry.Register("b", MakeTrainedCase().model).ok());
  ASSERT_TRUE(registry.Register("a", MakeTrainedCase().model).ok());  // Swap.
  serve::ModelRegistry::ReloadInfo after = registry.reload_info();
  EXPECT_EQ(after.registrations, 3);
  EXPECT_EQ(after.reloads, 1);
  EXPECT_EQ(after.last_model, "a");
}

TEST(WorkloadTest, FileRoundTripAndErrors) {
  std::vector<serve::WorkloadQuery> queries = {{0, 5, 10}, {3, 0, 1}};
  const std::string path = TempPath("workload.csv");
  ASSERT_TRUE(serve::WriteWorkload(queries, path).ok());
  StatusOr<std::vector<serve::WorkloadQuery>> back =
      serve::ReadWorkload(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].row, 0);
  EXPECT_EQ((*back)[0].t_start, 5);
  EXPECT_EQ((*back)[0].block_len, 10);
  EXPECT_EQ((*back)[1].row, 3);
  std::remove(path.c_str());

  const std::string bad_path = TempPath("workload_bad.csv");
  std::ofstream(bad_path) << "# comment\n1,2\n";
  EXPECT_FALSE(serve::ReadWorkload(bad_path).ok());
  std::remove(bad_path.c_str());
  EXPECT_FALSE(serve::ReadWorkload("/nonexistent/workload.csv").ok());
}

TEST(WorkloadTest, SynthesizedQueriesAreDeterministicAndInBounds) {
  const auto a = serve::SynthesizeWorkload(50, 8, 6, 100, 9);
  const auto b = serve::SynthesizeWorkload(50, 8, 6, 100, 9);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row, b[i].row);
    EXPECT_EQ(a[i].t_start, b[i].t_start);
    EXPECT_EQ(a[i].block_len, b[i].block_len);
    EXPECT_GE(a[i].row, 0);
    EXPECT_LT(a[i].row, 6);
    EXPECT_GE(a[i].t_start, 0);
    EXPECT_LE(a[i].t_start + a[i].block_len, 100);
  }
}

TEST(WorkloadTest, ApplyQueryAddsBlockToBaseMask) {
  Mask base(3, 20);
  base.set_missing(0, 0);
  Mask applied = serve::ApplyQuery(base, {1, 5, 4});
  EXPECT_TRUE(applied.missing(0, 0));  // Base misses survive.
  for (int t = 5; t < 9; ++t) EXPECT_TRUE(applied.missing(1, t));
  EXPECT_TRUE(applied.available(1, 4));
  EXPECT_TRUE(applied.available(1, 9));
  // Out-of-range rows are ignored, clamped times tolerated.
  Mask oob = serve::ApplyQuery(base, {99, 5, 4});
  EXPECT_EQ(oob.CountMissing(), base.CountMissing());
}

}  // namespace
}  // namespace deepmvi
