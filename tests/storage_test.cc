// Tests for the out-of-core storage subsystem (src/storage): chunked
// store round trips and corruption handling, the bounded LRU chunk cache
// under concurrent readers, windowed normalized reads, and — the
// acceptance bar of the subsystem — byte-identical checkpoints between
// in-core and chunked training.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/deepmvi.h"
#include "data/io.h"
#include "storage/chunk_cache.h"
#include "storage/chunk_store.h"
#include "storage/data_source.h"
#include "storage/windowed_reader.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

using namespace testutil;
using storage::ChunkCache;
using storage::ChunkedDataSource;
using storage::ChunkedSeriesStore;
using storage::ChunkedSeriesStoreWriter;
using storage::ChunkStoreOptions;
using storage::InMemoryDataSource;
using storage::WindowReader;

/// Fresh store directory under the test temp dir.
std::string StoreDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

DataTensor MultiDimTensor(int t_len, uint64_t seed) {
  Dimension stores{"store", {"a", "b"}};
  Dimension items{"item", {"x", "y", "z"}};
  return DataTensor({stores, items}, RandomMatrix(6, t_len, seed));
}

// ---- Store round trip -------------------------------------------------------

TEST(ChunkStoreTest, TensorRoundTripIsBitExact) {
  DataTensor data = MultiDimTensor(101, 3);  // Odd sizes -> edge chunks.
  const std::string dir = StoreDir("roundtrip");
  ChunkStoreOptions options;
  options.series_per_chunk = 4;
  options.times_per_chunk = 32;
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(data, dir, options).ok());

  StatusOr<ChunkedSeriesStore> store = ChunkedSeriesStore::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->num_series(), 6);
  EXPECT_EQ(store->num_times(), 101);
  EXPECT_EQ(store->num_row_groups(), 2);
  EXPECT_EQ(store->num_time_blocks(), 4);
  ASSERT_EQ(store->dims().size(), 2u);
  EXPECT_EQ(store->dims()[0].name, "store");
  EXPECT_EQ(store->dims()[1].members, data.dims()[1].members);

  StatusOr<DataTensor> loaded = store->ReadTensor();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectMatricesBitIdentical(loaded->values(), data.values(), "round trip");

  // Edge chunk geometry: last block is 101 - 3*32 = 5 steps, last group 2
  // rows.
  StatusOr<Matrix> chunk = store->ReadChunk(1, 3);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->rows(), 2);
  EXPECT_EQ(chunk->cols(), 5);
  for (int r = 0; r < 2; ++r) {
    for (int t = 0; t < 5; ++t) {
      ASSERT_EQ((*chunk)(r, t), data.values()(4 + r, 96 + t));
    }
  }
}

TEST(ChunkStoreTest, StreamingWriterMatchesWriteTensor) {
  DataTensor data = DataTensor::FromMatrix(RandomMatrix(7, 50, 11));
  ChunkStoreOptions options;
  options.series_per_chunk = 3;
  options.times_per_chunk = 16;

  const std::string dir_a = StoreDir("bulk");
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(data, dir_a, options).ok());

  const std::string dir_b = StoreDir("streamed");
  StatusOr<std::unique_ptr<ChunkedSeriesStoreWriter>> writer =
      ChunkedSeriesStoreWriter::Create(dir_b, options);
  ASSERT_TRUE(writer.ok());
  for (int r = 0; r < 7; ++r) {
    ASSERT_TRUE((*writer)->AppendRow(data.values().Row(r)).ok());
  }
  ASSERT_TRUE((*writer)->Finish({}).ok());  // Anonymous dim = FromMatrix's.

  EXPECT_EQ(ReadFileBytes(dir_a + "/" + storage::kChunkDataFileName),
            ReadFileBytes(dir_b + "/" + storage::kChunkDataFileName));
  EXPECT_EQ(ReadFileBytes(dir_a + "/" + storage::kManifestFileName),
            ReadFileBytes(dir_b + "/" + storage::kManifestFileName));
}

TEST(ChunkStoreTest, WriterRejectsRaggedRowsAndBadDims) {
  const std::string dir = StoreDir("ragged");
  StatusOr<std::unique_ptr<ChunkedSeriesStoreWriter>> writer =
      ChunkedSeriesStoreWriter::Create(dir, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendRow({1.0, 2.0, 3.0}).ok());
  EXPECT_EQ((*writer)->AppendRow({1.0}).code(), StatusCode::kInvalidArgument);
  // Dims that do not multiply out to the appended row count.
  Dimension dim{"series", {"a", "b", "c"}};
  EXPECT_EQ((*writer)->Finish({dim}).code(), StatusCode::kInvalidArgument);
}

// ---- Corruption and truncation ---------------------------------------------

TEST(ChunkStoreTest, CorruptChunkFailsChecksum) {
  DataTensor data = DataTensor::FromMatrix(RandomMatrix(4, 40, 5));
  const std::string dir = StoreDir("corrupt");
  ChunkStoreOptions options;
  options.series_per_chunk = 2;
  options.times_per_chunk = 16;
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(data, dir, options).ok());

  // Flip one byte in the middle of chunks.bin.
  const std::string chunk_path = dir + "/" + storage::kChunkDataFileName;
  std::string bytes = ReadFileBytes(chunk_path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
  std::ofstream(chunk_path, std::ios::binary | std::ios::trunc) << bytes;

  StatusOr<ChunkedSeriesStore> store = ChunkedSeriesStore::Open(dir);
  ASSERT_TRUE(store.ok());
  bool saw_checksum_error = false;
  for (int g = 0; g < store->num_row_groups(); ++g) {
    for (int b = 0; b < store->num_time_blocks(); ++b) {
      StatusOr<Matrix> chunk = store->ReadChunk(g, b);
      if (!chunk.ok()) {
        EXPECT_EQ(chunk.status().code(), StatusCode::kInvalidArgument);
        saw_checksum_error = true;
      }
    }
  }
  EXPECT_TRUE(saw_checksum_error);
}

TEST(ChunkStoreTest, TruncatedChunkDataIsIoError) {
  DataTensor data = DataTensor::FromMatrix(RandomMatrix(4, 40, 6));
  const std::string dir = StoreDir("truncated");
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(data, dir, {}).ok());
  const std::string chunk_path = dir + "/" + storage::kChunkDataFileName;
  std::string bytes = ReadFileBytes(chunk_path);
  std::ofstream(chunk_path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  StatusOr<ChunkedSeriesStore> store = ChunkedSeriesStore::Open(dir);
  ASSERT_TRUE(store.ok());
  StatusOr<Matrix> chunk = store->ReadChunk(0, 0);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kIoError);
}

TEST(ChunkStoreTest, CorruptAndTruncatedManifestsAreErrors) {
  DataTensor data = DataTensor::FromMatrix(RandomMatrix(3, 20, 7));
  const std::string dir = StoreDir("badmanifest");
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(data, dir, {}).ok());
  const std::string manifest = dir + "/" + storage::kManifestFileName;
  const std::string bytes = ReadFileBytes(manifest);

  // Bad magic.
  std::ofstream(manifest, std::ios::binary | std::ios::trunc)
      << "XXXX" << bytes.substr(4);
  EXPECT_EQ(ChunkedSeriesStore::Open(dir).status().code(),
            StatusCode::kInvalidArgument);

  // Truncated chunk table.
  std::ofstream(manifest, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() - 7);
  EXPECT_EQ(ChunkedSeriesStore::Open(dir).status().code(),
            StatusCode::kIoError);

  // Missing manifest.
  std::filesystem::remove(manifest);
  EXPECT_EQ(ChunkedSeriesStore::Open(dir).status().code(),
            StatusCode::kIoError);
}

// ---- Chunk cache ------------------------------------------------------------

TEST(ChunkCacheTest, CachesHitsAndCountsMisses) {
  ChunkCache cache(1 << 20);
  int loads = 0;
  auto loader = [&loads]() -> StatusOr<Matrix> {
    ++loads;
    return Matrix(4, 4, 1.0);
  };
  for (int i = 0; i < 5; ++i) {
    StatusOr<ChunkCache::ChunkPtr> chunk = cache.GetOrLoad(42, loader);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ((**chunk)(0, 0), 1.0);
  }
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(cache.stats().hits, 4);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ChunkCacheTest, LruEvictionRespectsByteBudgetUnderConcurrentReaders) {
  // Each chunk is 8x16 doubles = 1 KiB; budget holds 4 of them.
  const int64_t chunk_bytes = 8 * 16 * sizeof(double);
  ChunkCache cache(4 * chunk_bytes);
  ParallelFor(64, 8, [&](int i) {
    const int64_t key = i % 16;
    StatusOr<ChunkCache::ChunkPtr> chunk = cache.GetOrLoad(key, [key] {
      return StatusOr<Matrix>(Matrix(8, 16, static_cast<double>(key)));
    });
    ASSERT_TRUE(chunk.ok());
    // The handed-out chunk stays valid and correct even if evicted.
    ASSERT_EQ((**chunk)(7, 15), static_cast<double>(key));
  });
  const ChunkCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes_cached, cache.byte_budget());
  EXPECT_LE(stats.peak_bytes, cache.byte_budget());
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(stats.hits + stats.misses, 64);
}

TEST(ChunkCacheTest, OversizedChunkIsServedButNotRetained) {
  ChunkCache cache(64);  // Smaller than any real chunk.
  StatusOr<ChunkCache::ChunkPtr> chunk =
      cache.GetOrLoad(1, [] { return StatusOr<Matrix>(Matrix(16, 16, 3.0)); });
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ((**chunk)(0, 0), 3.0);
  EXPECT_EQ(cache.stats().bytes_cached, 0);
}

TEST(ChunkCacheTest, LoaderFailureIsPropagatedAndNotCached) {
  ChunkCache cache(1 << 20);
  StatusOr<ChunkCache::ChunkPtr> chunk = cache.GetOrLoad(
      7, [] { return StatusOr<Matrix>(Status::IoError("disk gone")); });
  EXPECT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kIoError);
  // A later successful load for the same key works.
  chunk = cache.GetOrLoad(7, [] { return StatusOr<Matrix>(Matrix(2, 2)); });
  EXPECT_TRUE(chunk.ok());
}

// ---- Windowed reads ---------------------------------------------------------

TEST(WindowedReaderTest, WindowsMatchNormalizedTensorBitForBit) {
  SeasonalCase seasonal = MakeSeasonalCase(21);
  const std::string dir = StoreDir("windows");
  ChunkStoreOptions options;
  options.series_per_chunk = 4;
  options.times_per_chunk = 32;
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(seasonal.data, dir, options).ok());
  StatusOr<ChunkedSeriesStore> store = ChunkedSeriesStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ChunkCache cache(1 << 18);
  ChunkedDataSource source(&store.value(), &cache);

  // Stats must match the in-core computation bit for bit.
  auto expected_stats = seasonal.data.ComputeNormalization(seasonal.mask);
  StatusOr<DataTensor::NormalizationStats> stats =
      source.ComputeNormalization(seasonal.mask);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->mean, expected_stats.mean);
  ASSERT_EQ(stats->stddev, expected_stats.stddev);

  const DataTensor normalized = seasonal.data.Normalized(expected_stats);
  StatusOr<std::unique_ptr<WindowReader>> reader = source.MakeReader(*stats);
  ASSERT_TRUE(reader.ok());
  // Stripes at a block boundary, mid-block, and the ragged tail.
  for (const auto& [t0, len] : std::vector<std::pair<int, int>>{
           {0, 32}, {17, 40}, {160, 40}, {199, 1}}) {
    StatusOr<ValueWindow> window = (*reader)->Read(t0, len);
    ASSERT_TRUE(window.ok()) << window.status().ToString();
    EXPECT_EQ(window->t_begin(), t0);
    EXPECT_EQ(window->t_end(), t0 + len);
    for (int r = 0; r < seasonal.data.num_series(); ++r) {
      for (int t = t0; t < t0 + len; ++t) {
        ASSERT_EQ((*window)(r, t), normalized.values()(r, t))
            << "(" << r << "," << t << ")";
      }
    }
  }
  EXPECT_FALSE((*reader)->Read(190, 20).ok());
  EXPECT_FALSE((*reader)->Read(-1, 5).ok());
}

// ---- In-core vs chunked training -------------------------------------------

void ExpectFitCheckpointsIdentical(const DataTensor& data, const Mask& mask,
                                   DeepMviConfig config, int64_t cache_bytes,
                                   const std::string& tag) {
  DeepMviImputer in_core(config);
  TrainedDeepMvi reference = in_core.Fit(data, mask);
  const std::string ref_path = TempPath(tag + "_incore.dmvi");
  ASSERT_TRUE(reference.Save(ref_path).ok());

  const std::string dir = StoreDir(tag + "_store");
  ChunkStoreOptions options;
  options.series_per_chunk = 3;
  options.times_per_chunk = 64;
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(data, dir, options).ok());
  StatusOr<ChunkedSeriesStore> store = ChunkedSeriesStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ChunkCache cache(cache_bytes);
  ChunkedDataSource source(&store.value(), &cache);

  DeepMviImputer out_of_core(config);
  StatusOr<TrainedDeepMvi> chunked = out_of_core.Fit(source, mask);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();
  const std::string oc_path = TempPath(tag + "_chunked.dmvi");
  ASSERT_TRUE(chunked->Save(oc_path).ok());

  // The whole point of the subsystem: the checkpoint bytes are equal.
  EXPECT_EQ(ReadFileBytes(ref_path), ReadFileBytes(oc_path)) << tag;
  EXPECT_LE(cache.stats().peak_bytes, cache.byte_budget()) << tag;
}

TEST(ChunkedTrainingTest, CheckpointMatchesInCoreTraining) {
  SeasonalCase seasonal = MakeSeasonalCase(31);
  ExpectFitCheckpointsIdentical(seasonal.data, seasonal.mask,
                                TinyDeepMviConfig(), /*cache_bytes=*/1 << 16,
                                "plain");
}

TEST(ChunkedTrainingTest, CheckpointMatchesWithThreadsAndTinyCache) {
  // A cache that holds barely two chunks forces constant eviction while
  // four worker slots read concurrently; results must not change.
  SeasonalCase seasonal = MakeSeasonalCase(32);
  DeepMviConfig config = TinyDeepMviConfig();
  config.num_threads = 4;
  ExpectFitCheckpointsIdentical(seasonal.data, seasonal.mask, config,
                                /*cache_bytes=*/2 * 3 * 64 * 8, "threaded");
}

TEST(ChunkedTrainingTest, CheckpointMatchesForMultiDimData) {
  DataTensor data = MultiDimTensor(120, 33);
  Mask mask = McarMask(6, 120, 0.15, 34);
  ExpectFitCheckpointsIdentical(data, mask, TinyDeepMviConfig(),
                                /*cache_bytes=*/1 << 16, "multidim");
}

TEST(ChunkedTrainingTest, PredictCellsMatchesInCorePredict) {
  SeasonalCase seasonal = MakeSeasonalCase(35);
  DeepMviImputer imputer(TinyDeepMviConfig());
  TrainedDeepMvi model = imputer.Fit(seasonal.data, seasonal.mask);
  Matrix predicted = model.Predict(seasonal.data, seasonal.mask);

  const std::string dir = StoreDir("predictcells");
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(seasonal.data, dir, {}).ok());
  StatusOr<ChunkedSeriesStore> store = ChunkedSeriesStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ChunkCache cache(1 << 18);
  ChunkedDataSource source(&store.value(), &cache);

  const std::vector<CellIndex> missing = seasonal.mask.MissingIndices();
  StatusOr<std::vector<double>> cells =
      model.PredictCells(source, seasonal.mask, missing);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  ASSERT_EQ(cells->size(), missing.size());
  for (size_t i = 0; i < missing.size(); ++i) {
    ASSERT_EQ((*cells)[i], predicted(missing[i].series, missing[i].time))
        << "cell " << i;
  }

  // Available cells are rejected.
  CellIndex available{0, 0};
  while (seasonal.mask.missing(available.series, available.time)) {
    ++available.time;
  }
  EXPECT_FALSE(model.PredictCells(source, seasonal.mask, {available}).ok());
}

TEST(ChunkedTrainingTest, TrainingSurfacesChunkCorruptionAsStatus) {
  SeasonalCase seasonal = MakeSeasonalCase(36);
  const std::string dir = StoreDir("corrupt_train");
  ASSERT_TRUE(ChunkedSeriesStore::WriteTensor(seasonal.data, dir, {}).ok());
  // Corrupt the payload after the store is written but before training.
  const std::string chunk_path = dir + "/" + storage::kChunkDataFileName;
  std::string bytes = ReadFileBytes(chunk_path);
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x55);
  std::ofstream(chunk_path, std::ios::binary | std::ios::trunc) << bytes;

  StatusOr<ChunkedSeriesStore> store = ChunkedSeriesStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ChunkCache cache(1 << 18);
  ChunkedDataSource source(&store.value(), &cache);
  DeepMviImputer imputer(TinyDeepMviConfig());
  StatusOr<TrainedDeepMvi> trained = imputer.Fit(source, seasonal.mask);
  ASSERT_FALSE(trained.ok());
  EXPECT_EQ(trained.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace deepmvi
