#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/rng.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"
#include "tensor/matmul_kernel.h"
#include "tensor/matrix.h"
#include "testing/test_util.h"

namespace deepmvi {
namespace {

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Arithmetic) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 6.0);
  EXPECT_EQ(sum(1, 1), 12.0);
  Matrix diff = b - a;
  EXPECT_EQ(diff(0, 0), 4.0);
  Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, CwiseOps) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{2, 2}, {2, 2}};
  Matrix prod = a.CwiseProduct(b);
  EXPECT_EQ(prod(1, 1), 8.0);
  Matrix quot = a.CwiseQuotient(b);
  EXPECT_EQ(quot(0, 1), 1.0);
}

TEST(MatrixTest, MatMulCorrectness) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix b = {{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, TransposeMatMulMatchesExplicit) {
  Rng rng(5);
  Matrix a = Matrix::RandomGaussian(4, 3, rng);
  Matrix b = Matrix::RandomGaussian(4, 5, rng);
  Matrix expected = a.Transpose().MatMul(b);
  EXPECT_TRUE(a.TransposeMatMul(b).ApproxEquals(expected, 1e-12));
}

TEST(MatrixTest, MatMulTransposeMatchesExplicit) {
  Rng rng(6);
  Matrix a = Matrix::RandomGaussian(4, 3, rng);
  Matrix b = Matrix::RandomGaussian(5, 3, rng);
  Matrix expected = a.MatMul(b.Transpose());
  EXPECT_TRUE(a.MatMulTranspose(b).ApproxEquals(expected, 1e-12));
}

// ---- Blocked-kernel regression tests ---------------------------------------
//
// The blocked kernels (matmul_kernel.h) promise bit-identical results to
// the textbook triple loop: blocking reorders which outputs are computed
// when, never the ascending-k accumulation inside one output. These tests
// sweep random and edge shapes — 0-dim, vectors, sizes off the tile
// multiple — against the naive reference for all three product variants.

void ExpectBitIdentical(const Matrix& actual, const Matrix& expected,
                        const char* what, int m, int k, int n) {
  testutil::ExpectMatricesBitIdentical(
      actual, expected,
      std::string(what) + " (" + std::to_string(m) + "x" + std::to_string(k) +
          " * " + std::to_string(k) + "x" + std::to_string(n) + ")");
}

/// All three product variants of the same logical product a(m x k) *
/// b(k x n) against the naive reference. TransposeMatMul runs on the
/// materialized a^T and MatMulTranspose on the materialized b^T, so each
/// variant consumes the operand layout it is specialized for while the
/// expected result stays the one naive product.
void CheckAllVariantsMatchNaive(int m, int k, int n, Rng& rng) {
  const Matrix a = Matrix::RandomGaussian(m, k, rng);
  const Matrix b = Matrix::RandomGaussian(k, n, rng);

  Matrix expected(m, n);
  internal::MatMulNaive(a.data(), b.data(), expected.data(), m, k, n);

  ExpectBitIdentical(a.MatMul(b), expected, "MatMul", m, k, n);
  ExpectBitIdentical(a.Transpose().TransposeMatMul(b), expected,
                     "TransposeMatMul", m, k, n);
  ExpectBitIdentical(a.MatMulTranspose(b.Transpose()), expected,
                     "MatMulTranspose", m, k, n);
}

TEST(MatMulKernelTest, BlockedMatchesNaiveOnRandomShapes) {
  Rng rng(123);
  // Shapes straddling the tile boundaries (k-tile 64, 2-row / 4-col micro
  // kernels): primes, exact multiples, one-off-from-multiple.
  const int shapes[][3] = {{1, 1, 1},    {2, 4, 8},    {3, 5, 7},
                           {7, 13, 5},   {8, 64, 8},   {9, 65, 3},
                           {64, 64, 64}, {65, 66, 67}, {1, 128, 1},
                           {2, 130, 31}, {33, 1, 33}};
  for (const auto& s : shapes) {
    CheckAllVariantsMatchNaive(s[0], s[1], s[2], rng);
  }
}

TEST(MatMulKernelTest, HandlesZeroDimensions) {
  Rng rng(5);
  const int shapes[][3] = {{0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {0, 0, 0}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::RandomGaussian(s[0], s[1], rng);
    const Matrix b = Matrix::RandomGaussian(s[1], s[2], rng);
    const Matrix c = a.MatMul(b);
    EXPECT_EQ(c.rows(), s[0]);
    EXPECT_EQ(c.cols(), s[2]);
    for (int r = 0; r < c.rows(); ++r) {
      for (int cc = 0; cc < c.cols(); ++cc) EXPECT_EQ(c(r, cc), 0.0);
    }
  }
}

TEST(MatMulKernelTest, NanAndInfPropagateThroughZeroCoefficients) {
  // Historical regression: the ikj loops skipped a == 0.0 terms, so a zero
  // row silently swallowed NaN/Inf in the other operand (0 * NaN became 0).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  Matrix a(2, 2);  // All zeros.
  Matrix b = {{nan, 1.0}, {2.0, inf}};
  Matrix c = a.MatMul(b);
  EXPECT_TRUE(std::isnan(c(0, 0)));
  EXPECT_TRUE(std::isnan(c(1, 0)));
  EXPECT_TRUE(std::isnan(c(0, 1)));  // 0 * inf = NaN.
  EXPECT_TRUE(std::isnan(c(1, 1)));

  Matrix zt(2, 2);  // Zero left operand, accessed transposed.
  Matrix ct = zt.TransposeMatMul(b);
  EXPECT_TRUE(std::isnan(ct(0, 0)));
  EXPECT_TRUE(std::isnan(ct(1, 1)));

  Matrix cmt = a.MatMulTranspose(b);
  EXPECT_TRUE(std::isnan(cmt(0, 0)));
  EXPECT_TRUE(std::isnan(cmt(1, 1)));

  // Non-finite values anywhere must reach AllFinite() checks downstream.
  Matrix spike = {{1.0, 0.0}, {0.0, 1.0}};
  spike(0, 0) = inf;
  EXPECT_FALSE(spike.MatMul(Matrix::Identity(2)).AllFinite());
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(7);
  Matrix a = Matrix::RandomGaussian(3, 5, rng);
  EXPECT_TRUE(a.Transpose().Transpose().ApproxEquals(a, 0.0));
}

TEST(MatrixTest, BlockAndSetBlock) {
  Matrix m = {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}};
  Matrix block = m.Block(1, 1, 2, 2);
  EXPECT_EQ(block(0, 0), 6.0);
  EXPECT_EQ(block(1, 1), 11.0);
  Matrix patch = {{0, 0}, {0, 0}};
  m.SetBlock(1, 1, patch);
  EXPECT_EQ(m(1, 1), 0.0);
  EXPECT_EQ(m(2, 2), 0.0);
  EXPECT_EQ(m(0, 0), 1.0);
}

TEST(MatrixTest, RowColAccess) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  auto row = m.Row(1);
  EXPECT_EQ(row, (std::vector<double>{3, 4}));
  auto col = m.Col(1);
  EXPECT_EQ(col, (std::vector<double>{2, 4, 6}));
  m.SetRow(0, {9, 9});
  EXPECT_EQ(m(0, 1), 9.0);
  m.SetCol(0, {1, 1, 1});
  EXPECT_EQ(m(2, 0), 1.0);
}

TEST(MatrixTest, Reductions) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m.Sum(), 10.0);
  EXPECT_EQ(m.Mean(), 2.5);
  EXPECT_EQ(m.Min(), 1.0);
  EXPECT_EQ(m.Max(), 4.0);
  EXPECT_NEAR(m.Norm(), std::sqrt(30.0), 1e-12);
  EXPECT_EQ(m.MaxAbs(), 4.0);
}

TEST(MatrixTest, RowColMeans) {
  Matrix m = {{1, 3}, {5, 7}};
  EXPECT_EQ(m.RowMeans(), (std::vector<double>{2, 6}));
  EXPECT_EQ(m.ColMeans(), (std::vector<double>{3, 5}));
}

TEST(MatrixTest, AllFinite) {
  Matrix m = {{1, 2}};
  EXPECT_TRUE(m.AllFinite());
  m(0, 0) = std::nan("");
  EXPECT_FALSE(m.AllFinite());
}

TEST(MatrixTest, VectorHelpers) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_EQ(Dot(a, b), 32.0);
  EXPECT_NEAR(Norm(a), std::sqrt(14.0), 1e-12);
}

TEST(MatrixTest, PearsonCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> constant = {5, 5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(a, constant), 0.0);
}

TEST(MaskTest, DefaultAllAvailable) {
  Mask m(3, 4);
  EXPECT_EQ(m.CountMissing(), 0);
  EXPECT_EQ(m.CountAvailable(), 12);
  EXPECT_TRUE(m.available(2, 3));
}

TEST(MaskTest, SetMissing) {
  Mask m(2, 5);
  m.set_missing(1, 2);
  EXPECT_TRUE(m.missing(1, 2));
  EXPECT_EQ(m.CountMissing(), 1);
  EXPECT_NEAR(m.MissingFraction(), 0.1, 1e-12);
}

TEST(MaskTest, SetMissingRangeClamps) {
  Mask m(1, 10);
  m.SetMissingRange(0, -5, 3);
  EXPECT_EQ(m.CountMissing(), 3);
  m.SetMissingRange(0, 8, 100);
  EXPECT_EQ(m.CountMissing(), 5);
}

TEST(MaskTest, MissingIndicesOrder) {
  Mask m(2, 2);
  m.set_missing(0, 1);
  m.set_missing(1, 0);
  auto idx = m.MissingIndices();
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], (CellIndex{0, 1}));
  EXPECT_EQ(idx[1], (CellIndex{1, 0}));
}

TEST(MaskTest, MissingBlockLengths) {
  Mask m(2, 10);
  m.SetMissingRange(0, 2, 5);   // block of 3
  m.SetMissingRange(0, 8, 10);  // block of 2 (to edge)
  m.SetMissingRange(1, 0, 1);   // block of 1
  auto lengths = m.MissingBlockLengths();
  ASSERT_EQ(lengths.size(), 3u);
  EXPECT_EQ(lengths[0], 3);
  EXPECT_EQ(lengths[1], 2);
  EXPECT_EQ(lengths[2], 1);
}

TEST(MaskOverlayTest, MatchesMaskWithSyntheticBlockApplied) {
  // The overlay must answer exactly like a copied mask with
  // SetMissingRange applied to the block rows -- the copy the training
  // loop used to make per sample.
  Mask base(4, 12);
  base.set_missing(0, 3);
  base.set_missing(2, 7);
  std::vector<uint8_t> block_rows = {1, 0, 1, 0};
  const int t0 = 5, t1 = 9;

  Mask copied = base;
  copied.SetMissingRange(0, t0, t1);
  copied.SetMissingRange(2, t0, t1);

  MaskOverlay overlay(base, t0, t1, block_rows);
  MaskOverlay plain(base);
  EXPECT_EQ(overlay.rows(), 4);
  EXPECT_EQ(overlay.cols(), 12);
  for (int r = 0; r < 4; ++r) {
    for (int t = 0; t < 12; ++t) {
      EXPECT_EQ(overlay.available(r, t), copied.available(r, t))
          << r << "," << t;
      EXPECT_EQ(plain.available(r, t), base.available(r, t)) << r << "," << t;
    }
  }
}

TEST(MaskTest, AndIntersection) {
  Mask a(1, 3), b(1, 3);
  a.set_missing(0, 0);
  b.set_missing(0, 2);
  Mask c = a.And(b);
  EXPECT_TRUE(c.missing(0, 0));
  EXPECT_TRUE(c.available(0, 1));
  EXPECT_TRUE(c.missing(0, 2));
}

TEST(DataTensorTest, FromMatrix1D) {
  Matrix values = {{1, 2, 3}, {4, 5, 6}};
  DataTensor data = DataTensor::FromMatrix(values);
  EXPECT_EQ(data.num_dims(), 1);
  EXPECT_EQ(data.num_series(), 2);
  EXPECT_EQ(data.num_times(), 3);
  EXPECT_EQ(data.dim(0).size(), 2);
}

TEST(DataTensorTest, FlattenUnflattenRoundTrip) {
  // 3 items x 4 regions.
  Dimension items{"item", {"i0", "i1", "i2"}};
  Dimension regions{"region", {"r0", "r1", "r2", "r3"}};
  DataTensor data({items, regions}, Matrix(12, 5));
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 4; ++b) {
      int row = data.FlattenIndex({a, b});
      auto k = data.UnflattenRow(row);
      EXPECT_EQ(k[0], a);
      EXPECT_EQ(k[1], b);
    }
  }
  // Last dimension varies fastest.
  EXPECT_EQ(data.FlattenIndex({0, 0}), 0);
  EXPECT_EQ(data.FlattenIndex({0, 1}), 1);
  EXPECT_EQ(data.FlattenIndex({1, 0}), 4);
}

TEST(DataTensorTest, SiblingsMatchPaperExample) {
  // Example from Sec 4.2: items {i0,i1,i2}, regions {r0..r3}; siblings of
  // (i1, r2) along items = {(i0,r2),(i2,r2)}; along regions =
  // {(i1,r0),(i1,r1),(i1,r3)}.
  Dimension items{"item", {"i0", "i1", "i2"}};
  Dimension regions{"region", {"r0", "r1", "r2", "r3"}};
  DataTensor data({items, regions}, Matrix(12, 5));
  const int row = data.FlattenIndex({1, 2});

  auto item_sibs = data.Siblings(row, 0);
  ASSERT_EQ(item_sibs.size(), 2u);
  EXPECT_EQ(item_sibs[0], data.FlattenIndex({0, 2}));
  EXPECT_EQ(item_sibs[1], data.FlattenIndex({2, 2}));

  auto region_sibs = data.Siblings(row, 1);
  ASSERT_EQ(region_sibs.size(), 3u);
  EXPECT_EQ(region_sibs[0], data.FlattenIndex({1, 0}));
  EXPECT_EQ(region_sibs[1], data.FlattenIndex({1, 1}));
  EXPECT_EQ(region_sibs[2], data.FlattenIndex({1, 3}));
}

TEST(DataTensorTest, Flattened1DPreservesValues) {
  Dimension a{"a", {"x", "y"}};
  Dimension b{"b", {"p", "q"}};
  Matrix values = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  DataTensor data({a, b}, values);
  DataTensor flat = data.Flattened1D();
  EXPECT_EQ(flat.num_dims(), 1);
  EXPECT_EQ(flat.num_series(), 4);
  EXPECT_TRUE(flat.values().ApproxEquals(values, 0.0));
  EXPECT_EQ(flat.dim(0).members[0], "x|p");
  EXPECT_EQ(flat.dim(0).members[3], "y|q");
}

TEST(DataTensorTest, NormalizationRoundTrip) {
  Matrix values = {{10, 20, 30, 40}, {5, 5, 5, 5}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(2, 4);
  auto stats = data.ComputeNormalization(mask);
  EXPECT_NEAR(stats.mean[0], 25.0, 1e-12);
  // Constant series gets stddev 1 to avoid division by zero.
  EXPECT_EQ(stats.stddev[1], 1.0);

  DataTensor normalized = data.Normalized(stats);
  EXPECT_NEAR(normalized.values().RowMeans()[0], 0.0, 1e-12);
  Matrix back = DataTensor::Denormalize(normalized.values(), stats);
  EXPECT_TRUE(back.ApproxEquals(values, 1e-9));
}

TEST(DataTensorTest, NormalizationIgnoresMissing) {
  Matrix values = {{1, 2, 1000, 3}};
  DataTensor data = DataTensor::FromMatrix(values);
  Mask mask(1, 4);
  mask.set_missing(0, 2);  // Exclude the outlier.
  auto stats = data.ComputeNormalization(mask);
  EXPECT_NEAR(stats.mean[0], 2.0, 1e-12);
}

}  // namespace
}  // namespace deepmvi
