#ifndef DEEPMVI_TESTS_TESTING_TEST_UTIL_H_
#define DEEPMVI_TESTS_TESTING_TEST_UTIL_H_

// Shared helpers for the gtest suites: matrix comparators, seeded-RNG
// fixtures, synthetic dataset/mask factories, the Imputer-contract
// checker, and small model configs. Everything is header-only and lives
// in deepmvi::testutil; test files typically open it with
// `using namespace testutil;` inside their own anonymous namespace.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "autodiff/ops.h"
#include "common/rng.h"
#include "core/deepmvi_config.h"
#include "data/imputer.h"
#include "data/synthetic.h"
#include "scenario/scenarios.h"
#include "tensor/data_tensor.h"
#include "tensor/mask.h"
#include "tensor/matrix.h"

namespace deepmvi {
namespace testutil {

// ---- Comparators -----------------------------------------------------------

/// Elementwise near-equality with a located failure message. Prefer this
/// over Matrix::ApproxEquals inside EXPECT_TRUE: on mismatch it names the
/// first offending cell instead of printing "false".
inline void ExpectMatricesNear(const Matrix& actual, const Matrix& expected,
                               double tol, const std::string& what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  for (int r = 0; r < actual.rows(); ++r) {
    for (int c = 0; c < actual.cols(); ++c) {
      EXPECT_NEAR(actual(r, c), expected(r, c), tol)
          << what << " at (" << r << "," << c << ")";
    }
  }
}

/// Exact equality, double for double — the contract of the binary
/// serialization round trip and of the serving determinism guarantees
/// (ApproxEquals with tol 0 would be close, but a located message beats
/// "false", and exact compares state the intent).
inline void ExpectMatricesBitIdentical(const Matrix& actual,
                                       const Matrix& expected,
                                       const std::string& what = "") {
  ASSERT_EQ(actual.rows(), expected.rows()) << what;
  ASSERT_EQ(actual.cols(), expected.cols()) << what;
  for (int r = 0; r < actual.rows(); ++r) {
    for (int c = 0; c < actual.cols(); ++c) {
      ASSERT_EQ(actual(r, c), expected(r, c))
          << what << " at (" << r << "," << c << ")";
    }
  }
}

/// Asserts that analytic and numerical gradients of `f` agree at `inputs`.
using GradientGraphFn =
    std::function<ad::Var(ad::Tape&, const std::vector<ad::Var>&)>;
inline void ExpectGradientsMatch(const GradientGraphFn& f,
                                 const std::vector<Matrix>& inputs,
                                 double tol = 1e-6) {
  std::vector<Matrix> analytic = ad::AnalyticGradient(f, inputs);
  std::vector<Matrix> numeric = ad::NumericalGradient(f, inputs);
  ASSERT_EQ(analytic.size(), numeric.size());
  for (size_t i = 0; i < analytic.size(); ++i) {
    ExpectMatricesNear(analytic[i], numeric[i], tol,
                       "gradient of input " + std::to_string(i));
  }
}

/// Checks the Imputer contract: the output has the data's shape, is finite
/// everywhere, and passes available cells through bit-unchanged.
inline void CheckImputerContract(Imputer& imputer, const DataTensor& data,
                                 const Mask& mask) {
  Matrix imputed = imputer.Impute(data, mask);
  ASSERT_EQ(imputed.rows(), data.num_series());
  ASSERT_EQ(imputed.cols(), data.num_times());
  EXPECT_TRUE(imputed.AllFinite()) << imputer.name();
  for (int r = 0; r < imputed.rows(); ++r) {
    for (int t = 0; t < imputed.cols(); ++t) {
      if (mask.available(r, t)) {
        ASSERT_EQ(imputed(r, t), data.values()(r, t))
            << imputer.name() << " modified an available cell";
      }
    }
  }
}

// ---- Fixtures ---------------------------------------------------------------

/// Base fixture for seed-parameterized sweeps: instantiate with
/// INSTANTIATE_TEST_SUITE_P(Seeds, MySweep, ::testing::Range<uint64_t>(1, 9))
/// and draw from rng() inside the test body.
class SeededRngTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SeededRngTest() : rng_(GetParam()) {}
  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

// ---- Data factories ---------------------------------------------------------

/// Gaussian matrix from a one-shot seeded stream.
inline Matrix RandomMatrix(int rows, int cols, uint64_t seed,
                           double stddev = 1.0) {
  Rng rng(seed);
  return Matrix::RandomGaussian(rows, cols, rng, 0.0, stddev);
}

/// Low-rank ground truth: X = U V^T + small noise. Matrix-completion
/// methods should recover it well under MCAR.
inline Matrix LowRankData(int n, int t_len, int rank, uint64_t seed) {
  Rng rng(seed);
  Matrix u = Matrix::RandomGaussian(n, rank, rng);
  Matrix v = Matrix::RandomGaussian(t_len, rank, rng);
  Matrix x = u.MatMulTranspose(v);
  for (int r = 0; r < n; ++r) {
    for (int t = 0; t < t_len; ++t) x(r, t) += 0.01 * rng.Gaussian();
  }
  return x;
}

/// Well-conditioned symmetric positive definite matrix.
inline Matrix RandomSpd(int n, Rng& rng) {
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix spd = a.TransposeMatMul(a);
  for (int i = 0; i < n; ++i) spd(i, i) += n;
  return spd;
}

/// True when the columns of `m` form an orthonormal set.
inline bool ColumnsOrthonormal(const Matrix& m, double tol = 1e-8) {
  Matrix gram = m.TransposeMatMul(m);
  return gram.ApproxEquals(Matrix::Identity(m.cols()), tol);
}

/// MCAR availability mask with every series incomplete.
inline Mask McarMask(int n, int t_len, double frac, uint64_t seed,
                     int block = 5) {
  ScenarioConfig config;
  config.kind = ScenarioKind::kMcar;
  config.percent_incomplete = 1.0;
  config.missing_fraction = frac;
  config.block_size = block;
  config.seed = seed;
  return GenerateScenario(config, n, t_len);
}

/// A small strongly-seasonal correlated dataset with ground truth `x`, its
/// DataTensor wrapper, and a 10% MCAR mask — the standard instance the
/// imputer suites train on.
struct SeasonalCase {
  Matrix x;
  DataTensor data;
  Mask mask;
};
inline SeasonalCase MakeSeasonalCase(uint64_t seed, int n = 6,
                                     int t_len = 200) {
  SyntheticConfig config;
  config.num_series = n;
  config.length = t_len;
  config.seasonal_periods = {25.0};
  config.seasonality_strength = 0.85;
  config.cross_correlation = 0.6;
  config.noise_level = 0.05;
  config.seed = seed;
  SeasonalCase out{GenerateSeriesMatrix(config), DataTensor(), Mask()};
  out.data = DataTensor::FromMatrix(out.x);
  ScenarioConfig scenario;
  scenario.kind = ScenarioKind::kMcar;
  scenario.percent_incomplete = 1.0;
  scenario.missing_fraction = 0.1;
  scenario.seed = seed + 1;
  out.mask = GenerateScenario(scenario, n, t_len);
  return out;
}

// ---- Model configs ----------------------------------------------------------

/// Smallest DeepMVI that still exercises every component; for smoke and
/// contract tests where accuracy does not matter.
inline DeepMviConfig TinyDeepMviConfig() {
  DeepMviConfig config;
  config.max_epochs = 3;
  config.samples_per_epoch = 24;
  config.patience = 1;
  config.filters = 8;
  config.num_heads = 2;
  config.embedding_dim = 4;
  return config;
}

/// Reduced-budget DeepMVI that trains to useful accuracy in seconds; for
/// the behavioral model tests.
inline DeepMviConfig FastDeepMviConfig() {
  DeepMviConfig config;
  config.max_epochs = 20;
  config.samples_per_epoch = 96;
  config.batch_size = 4;
  config.patience = 4;
  config.filters = 16;
  config.num_heads = 2;
  config.embedding_dim = 6;
  config.seed = 5;
  return config;
}

// ---- Filesystem -------------------------------------------------------------

/// Path inside gtest's per-run temp directory.
inline std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

}  // namespace testutil
}  // namespace deepmvi

#endif  // DEEPMVI_TESTS_TESTING_TEST_UTIL_H_
