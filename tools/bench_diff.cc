// bench_diff: compare two BENCH_*.json perf-trajectory files (as written
// by eval/suite.h's WriteSuiteJson) and flag accuracy or runtime
// regressions beyond a tolerance.
//
//   bench_diff BASELINE.json CURRENT.json
//              [--mae-tol R] [--rmse-tol R]        (relative, default 0.25)
//              [--abs-tol A]                       (absolute slack, 1e-6)
//              [--runtime-tol R]                   (ratio, default 3.0)
//              [--runtime-floor SECONDS]           (default 0.05)
//              [--no-runtime]
//
// A cell regresses when current.metric > baseline.metric * (1 + tol) +
// abs-tol (mae/rmse), or current.runtime > baseline.runtime * runtime-tol
// + runtime-floor. Cells present in the baseline but missing or failed in
// the current file are regressions too (coverage must not silently
// shrink); cells new in the current file are reported as informational.
// Exit codes: 0 clean, 1 regressions found, 2 usage/parse error.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace deepmvi {
namespace {

struct BenchCell {
  bool ok = false;
  double mae = 0.0;
  double rmse = 0.0;
  double runtime_seconds = 0.0;
};

using BenchFile = std::map<std::string, BenchCell>;  // key: ds|scenario|imp

/// Value of `"key": <...>` inside one JSON object line; empty when absent.
std::string FindField(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  while (begin < object.size() && object[begin] == ' ') ++begin;
  size_t end = begin;
  if (begin < object.size() && object[begin] == '"') {
    end = object.find('"', begin + 1);
    if (end == std::string::npos) return "";
    return object.substr(begin + 1, end - begin - 1);
  }
  while (end < object.size() && object[end] != ',' && object[end] != '}') ++end;
  return object.substr(begin, end - begin);
}

double ParseNumber(const std::string& text, double fallback) {
  if (text.empty() || text == "null") return fallback;
  return std::strtod(text.c_str(), nullptr);
}

/// Parses the cells array of a suite JSON file. The writer emits one cell
/// object per line, which keeps this scanner trivial: every line holding a
/// "dataset" field is one cell.
bool LoadBenchFile(const std::string& path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::string dataset = FindField(line, "dataset");
    if (dataset.empty()) continue;
    const std::string scenario = FindField(line, "scenario");
    const std::string imputer = FindField(line, "imputer");
    if (scenario.empty() || imputer.empty()) continue;
    BenchCell cell;
    cell.ok = FindField(line, "ok") == "true";
    cell.mae = ParseNumber(FindField(line, "mae"), NAN);
    cell.rmse = ParseNumber(FindField(line, "rmse"), NAN);
    cell.runtime_seconds = ParseNumber(FindField(line, "runtime_seconds"), NAN);
    (*out)[dataset + "|" + scenario + "|" + imputer] = cell;
  }
  if (out->empty()) {
    std::fprintf(stderr, "bench_diff: no cells found in %s\n", path.c_str());
    return false;
  }
  return true;
}

std::string FormatDelta(double base, double cur) {
  std::ostringstream os;
  os.precision(4);
  os << base << " -> " << cur;
  if (base > 0.0 && std::isfinite(base) && std::isfinite(cur)) {
    os << " (" << (cur / base >= 1.0 ? "+" : "")
       << static_cast<long long>(std::llround((cur / base - 1.0) * 100.0))
       << "%)";
  }
  return os.str();
}

int Run(int argc, char** argv) {
  std::string baseline_path, current_path;
  double mae_tol = 0.25, rmse_tol = 0.25, abs_tol = 1e-6;
  double runtime_tol = 3.0, runtime_floor = 0.05;
  bool check_runtime = true;
  for (int i = 1; i < argc; ++i) {
    auto number_flag = [&](const char* flag, double* value) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        *value = std::strtod(argv[++i], nullptr);
        return true;
      }
      return false;
    };
    if (number_flag("--mae-tol", &mae_tol) ||
        number_flag("--rmse-tol", &rmse_tol) ||
        number_flag("--abs-tol", &abs_tol) ||
        number_flag("--runtime-tol", &runtime_tol) ||
        number_flag("--runtime-floor", &runtime_floor)) {
      continue;
    } else if (std::strcmp(argv[i], "--no-runtime") == 0) {
      check_runtime = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: bench_diff BASELINE.json CURRENT.json [--mae-tol R]\n"
          "                  [--rmse-tol R] [--abs-tol A] [--runtime-tol R]\n"
          "                  [--runtime-floor S] [--no-runtime]\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "too many positional arguments (see --help)\n");
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "bench_diff: need BASELINE.json and CURRENT.json\n");
    return 2;
  }

  BenchFile baseline, current;
  if (!LoadBenchFile(baseline_path, &baseline) ||
      !LoadBenchFile(current_path, &current)) {
    return 2;
  }

  std::vector<std::string> regressions;
  int compared = 0;
  for (const auto& [key, base] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      regressions.push_back(key + ": missing from current file");
      continue;
    }
    const BenchCell& cur = it->second;
    if (base.ok && !cur.ok) {
      regressions.push_back(key + ": was ok in baseline, now failed");
      continue;
    }
    if (!base.ok) continue;  // Nothing to compare against.
    ++compared;
    if (std::isfinite(base.mae) &&
        !(cur.mae <= base.mae * (1.0 + mae_tol) + abs_tol)) {
      regressions.push_back(key + ": mae " + FormatDelta(base.mae, cur.mae));
    }
    if (std::isfinite(base.rmse) &&
        !(cur.rmse <= base.rmse * (1.0 + rmse_tol) + abs_tol)) {
      regressions.push_back(key + ": rmse " + FormatDelta(base.rmse, cur.rmse));
    }
    if (check_runtime && std::isfinite(base.runtime_seconds) &&
        !(cur.runtime_seconds <=
          base.runtime_seconds * runtime_tol + runtime_floor)) {
      regressions.push_back(key + ": runtime " +
                            FormatDelta(base.runtime_seconds,
                                        cur.runtime_seconds) +
                            "s");
    }
  }
  int added = 0;
  for (const auto& entry : current) {
    if (baseline.find(entry.first) == baseline.end()) {
      std::printf("new cell (no baseline): %s\n", entry.first.c_str());
      ++added;
    }
  }

  std::printf("compared %d cells (%d new) of %s vs %s\n", compared, added,
              current_path.c_str(), baseline_path.c_str());
  if (regressions.empty()) {
    std::printf("no regressions beyond tolerance (mae/rmse +%.0f%%, runtime "
                "x%.1f + %.2fs)\n",
                mae_tol * 100.0, runtime_tol, runtime_floor);
    return 0;
  }
  std::printf("%zu regression(s):\n", regressions.size());
  for (const std::string& r : regressions) std::printf("  %s\n", r.c_str());
  return 1;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
