#ifndef DEEPMVI_TOOLS_DATASET_FLAGS_H_
#define DEEPMVI_TOOLS_DATASET_FLAGS_H_

// Shared dataset/mask assembly for dmvi_train and dmvi_serve.
//
// The two tools must reconstruct the *same* dataset and base mask from the
// same flags: dmvi_serve's output is compared byte-for-byte against
// dmvi_train's (the cross-process save/load exactness check in CI), so any
// drift between two copies of this logic would surface as a confusing
// `cmp` failure. Keeping it in one place makes drift impossible.

#include <cstdio>
#include <cstring>
#include <string>

#include "data/io.h"
#include "data/presets.h"
#include "eval/suite.h"
#include "scenario/scenarios.h"

namespace deepmvi {
namespace tools {

/// Flags describing how to obtain a dataset and its base availability
/// mask: either a Table 1 preset plus a scenario mask (presets ship
/// complete, so missing cells are simulated), or a CSV whose inline
/// nan/empty cells — optionally AND-combined with a 0/1 mask file — mark
/// the missing data.
struct DatasetSpec {
  std::string preset;
  std::string input;
  std::string mask_path;
  std::string scenario_name = "MCAR";
  DatasetScale scale = DatasetScale::kReduced;
  uint64_t dataset_seed = 1;
  uint64_t scenario_seed = 7;
};

/// When argv[*i] equals `flag`, returns its value and advances *i; when
/// the flag matches but no value follows, sets *missing_value (so callers
/// can say "missing value for --x" instead of "unknown argument").
/// Returns nullptr otherwise. Shared by every flag loop in the tools.
inline const char* NextFlagValue(int argc, char** argv, int* i,
                                 const char* flag, bool* missing_value) {
  if (std::strcmp(argv[*i], flag) != 0) return nullptr;
  if (*i + 1 >= argc) {
    *missing_value = true;
    return nullptr;
  }
  return argv[++*i];
}

/// Consumes argv[*i] (and its value, advancing *i) when it is one of the
/// dataset flags: --preset, --input, --mask, --scenario, --scenario-seed,
/// --dataset-seed, --scale, --full. Returns true when consumed. A
/// recognized flag whose value is missing sets *missing_value and returns
/// false so the caller can report it precisely.
inline bool ParseDatasetFlag(int argc, char** argv, int* i, DatasetSpec* spec,
                             bool* missing_value) {
  auto next = [&](const char* flag) {
    return NextFlagValue(argc, argv, i, flag, missing_value);
  };
  const char* value = nullptr;
  if ((value = next("--preset"))) {
    spec->preset = value;
  } else if ((value = next("--input"))) {
    spec->input = value;
  } else if ((value = next("--mask"))) {
    spec->mask_path = value;
  } else if ((value = next("--scenario"))) {
    spec->scenario_name = value;
  } else if ((value = next("--scenario-seed"))) {
    spec->scenario_seed = std::strtoull(value, nullptr, 10);
  } else if ((value = next("--dataset-seed"))) {
    spec->dataset_seed = std::strtoull(value, nullptr, 10);
  } else if ((value = next("--scale"))) {
    spec->scale = std::strcmp(value, "full") == 0 ? DatasetScale::kFull
                                                  : DatasetScale::kReduced;
  } else if (std::strcmp(argv[*i], "--full") == 0) {
    spec->scale = DatasetScale::kFull;
  } else {
    return false;
  }
  return true;
}

/// Materializes the dataset and base mask described by `spec`, printing
/// diagnostics to stderr on failure. Returns 0 on success, else the
/// process exit code (2 for usage errors, 1 for I/O errors).
inline int BuildDatasetAndMask(const DatasetSpec& spec, DataTensor* data,
                               Mask* mask) {
  if (spec.preset.empty() == spec.input.empty()) {
    std::fprintf(stderr, "exactly one of --preset / --input is required\n");
    return 2;
  }
  if (!spec.preset.empty()) {
    if (!IsDatasetName(spec.preset)) {
      std::fprintf(stderr, "unknown preset '%s'\n", spec.preset.c_str());
      return 2;
    }
    *data = MakeDataset(spec.preset, spec.scale, spec.dataset_seed);
    StatusOr<ScenarioKind> kind = ParseScenarioKind(spec.scenario_name);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    ScenarioConfig scenario;
    scenario.kind = *kind;
    scenario.percent_incomplete = 1.0;
    scenario.seed = spec.scenario_seed;
    *mask = GenerateScenario(scenario, data->num_series(), data->num_times());
  } else {
    Mask inline_mask;
    StatusOr<DataTensor> loaded = ReadDataTensor(spec.input, &inline_mask);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", spec.input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    *data = std::move(loaded).value();
    *mask = inline_mask;
    if (!spec.mask_path.empty()) {
      StatusOr<Mask> extra = ReadMask(spec.mask_path);
      if (!extra.ok()) {
        std::fprintf(stderr, "error reading %s: %s\n", spec.mask_path.c_str(),
                     extra.status().ToString().c_str());
        return 1;
      }
      if (extra->rows() != data->num_series() ||
          extra->cols() != data->num_times()) {
        std::fprintf(stderr, "mask shape %dx%d does not match data %dx%d\n",
                     extra->rows(), extra->cols(), data->num_series(),
                     data->num_times());
        return 1;
      }
      *mask = mask->And(*extra);
    }
  }
  return 0;
}

}  // namespace tools
}  // namespace deepmvi

#endif  // DEEPMVI_TOOLS_DATASET_FLAGS_H_
