// dmvi_bench_suite: batch experiment-suite runner.
//
//   dmvi_bench_suite [--datasets AirQ,Meteo] [--imputers Mean,DeepMVI]
//                    [--scenarios MCAR,Blackout,MNAR] [--quick|--full]
//                    [--threads N] [--out DIR] [--seed S] [--name NAME]
//
// Fans the (dataset x scenario x imputer) grid out over worker threads via
// eval/suite.h and writes DIR/NAME.json and DIR/NAME.csv (defaults:
// bench_results/suite.{json,csv}). Every cell is independently seeded, so
// the output is identical for any --threads value. Imputer names are the
// benchmark names of bench/bench_common.h; dataset names are the Table 1
// presets; scenario names are MCAR, MissDisj, MissOver, Blackout,
// MissPoint, MultiBlackout, MNAR, Drift. The default grid covers the
// production scenario set (MCAR, Blackout, MultiBlackout, MNAR, Drift),
// so BENCH_* trajectory files carry those cells.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/deepmvi.h"
#include "data/io.h"
#include "eval/suite.h"
#include "storage/chunk_cache.h"
#include "storage/chunk_store.h"
#include "storage/data_source.h"
#include "tensor/matmul_kernel.h"

namespace deepmvi {
namespace {

/// Wall time of one n x n MatMul through `multiply`, medianless best-of
/// style: repeat until ~50ms elapsed and report seconds per multiply.
double TimeMatMul(int n, const std::function<void(const Matrix&, const Matrix&,
                                                  Matrix*)>& multiply) {
  Rng rng(1);
  const Matrix a = Matrix::RandomGaussian(n, n, rng);
  const Matrix b = Matrix::RandomGaussian(n, n, rng);
  Matrix c(n, n);
  multiply(a, b, &c);  // Warm-up.
  Stopwatch watch;
  int iterations = 0;
  do {
    multiply(a, b, &c);
    ++iterations;
  } while (watch.ElapsedSeconds() < 0.05);
  return watch.ElapsedSeconds() / iterations;
}

/// Blocked-kernel vs naive-reference MatMul timings for the BENCH_* micro
/// section: the kernel-level counterpart of the end-to-end cells.
std::vector<std::pair<std::string, double>> MatMulMicroTimings() {
  std::vector<std::pair<std::string, double>> out;
  for (int n : {64, 128, 256}) {
    const double blocked =
        TimeMatMul(n, [](const Matrix& a, const Matrix& b, Matrix* c) {
          *c = a.MatMul(b);
        });
    const double naive =
        TimeMatMul(n, [](const Matrix& a, const Matrix& b, Matrix* c) {
          *c = Matrix(a.rows(), b.cols());
          internal::MatMulNaive(a.data(), b.data(), c->data(), a.rows(),
                                a.cols(), b.cols());
        });
    const std::string suffix = std::to_string(n);
    out.emplace_back("matmul_blocked_seconds_" + suffix, blocked);
    out.emplace_back("matmul_naive_seconds_" + suffix, naive);
    out.emplace_back("matmul_speedup_" + suffix, naive / blocked);
  }
  return out;
}

/// Out-of-core cells: trains DeepMVI from a chunked store directory for
/// every scenario of the run and appends the scored cells to the suite
/// (dataset name "store:<dir>"). Training and scoring stream chunks
/// through a cache_mb-bounded ChunkCache; the dense tensor is never
/// materialized.
void AppendStoreCells(const std::string& data_dir, int cache_mb,
                      const bench::BenchOptions& options,
                      const std::vector<ScenarioConfig>& scenarios,
                      SuiteResult* suite) {
  // Any store-level failure becomes one failed cell per scenario: the
  // (possibly hours-long) in-core grid that already ran must still be
  // written out, and the suite's nonzero exit on failed cells reports
  // the problem.
  auto fail_all = [&](const Status& status) {
    std::fprintf(stderr, "store %s: %s\n", data_dir.c_str(),
                 status.ToString().c_str());
    for (const ScenarioConfig& scenario : scenarios) {
      SuiteCell cell;
      cell.dataset = "store:" + data_dir;
      cell.imputer = "DeepMVI";
      cell.scenario = scenario;
      cell.scenario_name = ScenarioName(scenario.kind);
      cell.error = status.ToString();
      suite->cells.push_back(std::move(cell));
    }
  };

  StatusOr<storage::ChunkedSeriesStore> store =
      storage::ChunkedSeriesStore::Open(data_dir);
  if (!store.ok()) return fail_all(store.status());
  // A store without a mask.csv is scored against an all-available base;
  // a mask that exists but fails to read or fit is an error — silently
  // falling back would score the store's missing-cell placeholders as
  // ground truth.
  Mask base_mask(store->num_series(), store->num_times());
  const std::string mask_path = data_dir + "/" + storage::kMaskFileName;
  if (std::filesystem::exists(mask_path)) {
    StatusOr<Mask> mask_or = ReadMask(mask_path);
    if (!mask_or.ok()) return fail_all(mask_or.status());
    base_mask = std::move(mask_or).value();
    if (base_mask.rows() != store->num_series() ||
        base_mask.cols() != store->num_times()) {
      return fail_all(Status::InvalidArgument(
          "mask shape " + std::to_string(base_mask.rows()) + "x" +
          std::to_string(base_mask.cols()) + " does not match store " +
          std::to_string(store->num_series()) + "x" +
          std::to_string(store->num_times())));
    }
  }
  storage::ChunkCache cache(static_cast<int64_t>(cache_mb) << 20);
  storage::ChunkedDataSource source(&store.value(), &cache);

  DeepMviConfig config = bench::DeepMviBenchConfig(options);
  SourceImputeFn impute =
      [&config](const storage::DataSource& src, const Mask& train_mask,
                const std::vector<CellIndex>& cells)
      -> StatusOr<std::vector<double>> {
    DeepMviImputer imputer(config);
    StatusOr<TrainedDeepMvi> trained = imputer.Fit(src, train_mask);
    if (!trained.ok()) return trained.status();
    return trained->PredictCells(src, train_mask, cells);
  };

  for (const ScenarioConfig& scenario : scenarios) {
    SuiteCell cell;
    cell.dataset = "store:" + data_dir;
    cell.imputer = "DeepMVI";
    cell.scenario = scenario;
    cell.scenario_name = ScenarioName(scenario.kind);
    StatusOr<ExperimentResult> result =
        RunStoreExperiment(source, base_mask, scenario, "DeepMVI", impute);
    if (result.ok()) {
      cell.result = std::move(result).value();
      cell.ok = true;
    } else {
      cell.error = result.status().ToString();
    }
    suite->cells.push_back(std::move(cell));
  }
  const storage::ChunkCache::Stats cs = cache.stats();
  std::printf(
      "store cells: %lld chunk hits, %lld misses, %lld evictions, peak "
      "%.1f MiB (budget %d MiB)\n",
      static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
      static_cast<long long>(cs.evictions),
      static_cast<double>(cs.peak_bytes) / (1024.0 * 1024.0), cache_mb);
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);

  std::vector<std::string> datasets = {"AirQ", "Meteo"};
  std::vector<std::string> imputers = {"Mean", "LinearInterp", "SVDImp",
                                       "CDRec"};
  std::vector<std::string> scenario_names = {"MCAR", "Blackout",
                                             "MultiBlackout", "MNAR", "Drift"};
  std::string name = "suite";
  std::string data_dir;
  int cache_mb = 256;
  uint64_t seed = 1;
  bool micro_matmul = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--datasets") == 0 && i + 1 < argc) {
      datasets = SplitCommas(argv[++i]);
    } else if (std::strcmp(argv[i], "--imputers") == 0 && i + 1 < argc) {
      imputers = SplitCommas(argv[++i]);
    } else if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      scenario_names = SplitCommas(argv[++i]);
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      cache_mb = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--micro-matmul") == 0) {
      micro_matmul = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_bench_suite [--datasets A,B] [--imputers I,J]\n"
          "                        [--scenarios MCAR,Blackout] [--quick|--full]\n"
          "                        [--threads N] [--out DIR] [--seed S]\n"
          "                        [--name NAME] [--micro-matmul]\n"
          "                        [--data-dir STORE [--cache-mb N]]\n");
      return 0;
    }
  }

  SuiteSpec spec;
  spec.datasets = datasets;
  spec.imputers = imputers;
  for (const std::string& scenario_name : scenario_names) {
    StatusOr<ScenarioKind> kind = ParseScenarioKind(scenario_name);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 1;
    }
    ScenarioConfig config;
    config.kind = *kind;
    config.percent_incomplete = 1.0;
    config.seed = seed;
    spec.scenarios.push_back(config);
  }
  spec.factory =
      [&options](const std::string& imputer_name) -> std::unique_ptr<Imputer> {
    // MakeImputer aborts on unknown names; report them as failed cells.
    if (!bench::IsImputerName(imputer_name)) return nullptr;
    return bench::MakeImputer(imputer_name, options);
  };
  spec.scale = options.dataset_scale();
  spec.dataset_seed = seed;
  spec.threads = options.threads;
  spec.progress = [](int done, int total) {
    std::fprintf(stderr, "\r[%d/%d] experiments done", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  SuiteResult suite = RunSuite(spec);
  if (!data_dir.empty()) {
    AppendStoreCells(data_dir, cache_mb, options, spec.scenarios, &suite);
  }
  if (micro_matmul) {
    suite.micro = MatMulMicroTimings();
    for (const auto& entry : suite.micro) {
      std::printf("micro %-28s %.6g\n", entry.first.c_str(), entry.second);
    }
  }

  std::printf("%s\n", SuiteToTable(suite).ToAscii().c_str());
  std::printf("ran %zu experiments on %d threads in %.2fs (%lld failed)\n",
              suite.cells.size(), suite.threads_used, suite.wall_seconds,
              static_cast<long long>(suite.num_failed()));

  std::error_code ec;
  std::filesystem::create_directories(options.output_dir, ec);
  const std::string json_path = options.output_dir + "/" + name + ".json";
  const std::string csv_path = options.output_dir + "/" + name + ".csv";
  Status status = WriteSuiteJson(suite, json_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = WriteSuiteCsv(suite, csv_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", json_path.c_str(), csv_path.c_str());
  return suite.num_failed() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
