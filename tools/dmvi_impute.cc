// dmvi_impute: command-line missing value imputation for CSV datasets.
//
//   dmvi_impute --input data.csv [--mask mask.csv] [--method DeepMVI]
//               [--output imputed.csv] [--report]
//
// The input is a series-major CSV (one row per series); missing cells are
// empty fields or `nan`, or supplied separately via --mask (0/1 CSV of
// the same shape). Optional `# dim:` headers (see src/data/io.h) declare
// a multidimensional index; without them the file is treated as a plain
// collection of series.
//
// Methods: DeepMVI (default), CDRec, DynaMMO, TRMF, SVDImp, SoftImpute,
// SVT, STMVL, BRITS, GPVAE, Transformer, Mean, LinearInterp.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/dynammo.h"
#include "baselines/matrix_completion.h"
#include "baselines/simple.h"
#include "baselines/stmvl.h"
#include "baselines/trmf.h"
#include "common/stopwatch.h"
#include "core/deepmvi.h"
#include "data/io.h"
#include "deep/brits.h"
#include "deep/gpvae.h"
#include "deep/transformer_imputer.h"

namespace deepmvi {
namespace {

std::unique_ptr<Imputer> MakeImputer(const std::string& method) {
  if (method == "DeepMVI") return std::make_unique<DeepMviImputer>();
  if (method == "CDRec") return std::make_unique<CdRecImputer>();
  if (method == "DynaMMO") return std::make_unique<DynammoImputer>();
  if (method == "TRMF") return std::make_unique<TrmfImputer>();
  if (method == "SVDImp") return std::make_unique<SvdImputer>();
  if (method == "SoftImpute") return std::make_unique<SoftImputer>();
  if (method == "SVT") return std::make_unique<SvtImputer>();
  if (method == "STMVL") return std::make_unique<StmvlImputer>();
  if (method == "BRITS") return std::make_unique<BritsImputer>();
  if (method == "GPVAE") return std::make_unique<GpVaeImputer>();
  if (method == "Transformer") return std::make_unique<TransformerImputer>();
  if (method == "Mean") return std::make_unique<MeanImputer>();
  if (method == "LinearInterp") {
    return std::make_unique<LinearInterpolationImputer>();
  }
  return nullptr;
}

int Run(int argc, char** argv) {
  std::string input, mask_path, output = "imputed.csv", method = "DeepMVI";
  bool report = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--input") == 0 && i + 1 < argc) {
      input = argv[++i];
    } else if (std::strcmp(argv[i], "--mask") == 0 && i + 1 < argc) {
      mask_path = argv[++i];
    } else if (std::strcmp(argv[i], "--output") == 0 && i + 1 < argc) {
      output = argv[++i];
    } else if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
      method = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_impute --input data.csv [--mask mask.csv]\n"
          "                   [--method DeepMVI] [--output imputed.csv]\n"
          "                   [--report]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "--input is required (see --help)\n");
    return 2;
  }

  Mask inline_mask;
  StatusOr<DataTensor> data = ReadDataTensor(input, &inline_mask);
  if (!data.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 data.status().ToString().c_str());
    return 1;
  }

  Mask mask = inline_mask;
  if (!mask_path.empty()) {
    StatusOr<Mask> loaded = ReadMask(mask_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", mask_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (loaded->rows() != data->num_series() ||
        loaded->cols() != data->num_times()) {
      std::fprintf(stderr, "mask shape %dx%d does not match data %dx%d\n",
                   loaded->rows(), loaded->cols(), data->num_series(),
                   data->num_times());
      return 1;
    }
    // Combine: a cell is available only if available in both.
    mask = mask.And(*loaded);
  }
  if (mask.CountMissing() == 0) {
    std::fprintf(stderr, "nothing to impute: no missing cells found\n");
    return 1;
  }

  std::unique_ptr<Imputer> imputer = MakeImputer(method);
  if (imputer == nullptr) {
    std::fprintf(stderr, "unknown method '%s' (see --help)\n", method.c_str());
    return 2;
  }

  if (report) {
    std::printf("dataset: %d series x %d steps (%d dims), %lld missing cells"
                " (%.2f%%)\n",
                data->num_series(), data->num_times(), data->num_dims(),
                static_cast<long long>(mask.CountMissing()),
                100.0 * mask.MissingFraction());
  }
  Stopwatch watch;
  Matrix imputed = imputer->Impute(*data, mask);
  if (report) {
    std::printf("%s finished in %.2fs\n", imputer->name().c_str(),
                watch.ElapsedSeconds());
  }

  DataTensor result(data->dims(), std::move(imputed));
  Status status = WriteDataTensor(result, output);
  if (!status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  if (report) std::printf("wrote %s\n", output.c_str());
  return 0;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
