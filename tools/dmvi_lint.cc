// Repo-invariant linter: walks the source tree and enforces the
// concurrency/determinism/layering rules described in tools/lint/lint.h.
// CI runs it as a required job; the lint_test suite runs the same engine
// against golden fixtures.
//
// Usage: dmvi_lint [--repo-root DIR] [ROOT...]
//   ROOTs default to "src tools tests", relative to --repo-root
//   (default: the current directory). Exit 0 when clean, 1 on violations,
//   2 on usage errors.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::string repo_root = ".";
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repo-root") {
      if (i + 1 >= argc) {
        std::cerr << "dmvi_lint: --repo-root needs a value\n";
        return 2;
      }
      repo_root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dmvi_lint [--repo-root DIR] [ROOT...]\n"
                   "rules: sync-primitive raw-rng iostream "
                   "status-nodiscard layer-include\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dmvi_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "tools", "tests"};

  const std::vector<deepmvi::lint::Violation> violations =
      deepmvi::lint::LintTree(repo_root, roots);
  for (const deepmvi::lint::Violation& violation : violations) {
    std::cout << deepmvi::lint::FormatViolation(violation) << "\n";
  }
  if (violations.empty()) {
    std::cout << "dmvi_lint: clean\n";
    return 0;
  }
  std::cout << "dmvi_lint: " << violations.size() << " violation(s)\n";
  return 1;
}
