// dmvi_loadgen: concurrent load generator for the dmvi_serve HTTP
// front-end — the measuring half of the network serving stack (dmvi_serve
// --listen is the serving half).
//
//   dmvi_loadgen --target HOST:PORT [--concurrency C]
//                (--synth N [--block B] [--workload-seed S] |
//                 --workload FILE)
//                [--rps R] [--json out.json] [--name LABEL]
//                [--impute-csv out.csv] [--reload-every N]
//                [--expect-degraded] [--max-p95-ms X]
//
// Queries are the same `row,t_start,block_len` block-hiding units
// dmvi_serve replays in-process (the dataset shape is discovered via GET
// /healthz, so synthesized workloads match the served dataset). C client
// connections issue them concurrently over keep-alive; --rps > 0 paces
// dispatch open-loop against a fixed schedule (requests are sent when
// *scheduled*, late or not, so server slowdowns show up as latency rather
// than reduced load) while --rps 0 runs closed-loop at full speed.
//
// Reports p50/p95/max latency and request/row throughput; --json writes a
// suite-compatible cells file (dataset/scenario/imputer keys) so the
// numbers ride the BENCH_* perf trajectory and bench_diff gating.
//
// Overload mode: point --rps well past what the server sustains at a
// server started with --degrade-watermark/--shed-watermark, and the
// degradation ladder keeps every request answered — degraded responses
// (x-dmvi-degraded header) are counted separately from failures.
// --expect-degraded exits non-zero if the ladder never fired (the run
// didn't actually prove anything about overload), and --max-p95-ms X
// exits non-zero if p95 latency exceeded X — together they make "bounded
// p95, zero failed, degraded > 0 at N x sustainable load" a CI assertion.
//
// --impute-csv fetches the served dataset's base-mask imputation as
// text/csv and writes the body verbatim: byte-identical to dmvi_serve /
// dmvi_train --impute-csv output for the same checkpoint + dataset flags
// (the CI loopback smoke `cmp`s exactly this). --reload-every N posts
// /admin/reload every N queries mid-run, proving warm reloads drop zero
// requests.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "serve/telemetry.h"
#include "serve/workload.h"

namespace deepmvi {
namespace {

struct LoadgenOptions {
  std::string host;
  int port = 0;
  int concurrency = 4;
  int synth = 64;
  int block = 10;
  uint64_t workload_seed = 11;
  std::string workload_path;
  double rps = 0.0;  // 0 = closed loop, full speed.
  std::string json_path;
  std::string name = "loadgen";
  std::string impute_csv;
  int reload_every = 0;  // 0 = never.
  bool expect_degraded = false;
  double max_p95_ms = 0.0;  // 0 = no bound.
};

/// One worker's share of the run: latencies (seconds) for its completed
/// requests plus failure and reload counts.
struct WorkerResult {
  std::vector<double> latencies;
  int64_t rows = 0;
  int failed = 0;
  int reloads_failed = 0;
  int64_t degraded = 0;
};

std::string QueryBody(const serve::WorkloadQuery& query) {
  return "{\"model\": \"default\", \"query\": {\"row\": " +
         std::to_string(query.row) +
         ", \"t_start\": " + std::to_string(query.t_start) +
         ", \"block_len\": " + std::to_string(query.block_len) + "}}";
}

void RunWorker(const LoadgenOptions& options,
               const std::vector<serve::WorkloadQuery>& queries, int worker,
               const std::chrono::steady_clock::time_point& start,
               WorkerResult* result) {
  net::Client client(options.host, options.port);
  for (size_t i = worker; i < queries.size(); i += options.concurrency) {
    if (options.rps > 0.0) {
      // Open loop: request i is *scheduled* at i / rps seconds into the
      // run; sleep until then, never past it. A slow server makes us late
      // (latency grows) but does not reduce the offered load.
      const auto scheduled =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(i / options.rps));
      std::this_thread::sleep_until(scheduled);
    }
    if (options.reload_every > 0 &&
        i % static_cast<size_t>(options.reload_every) == 0 && i > 0) {
      StatusOr<net::HttpMessage> reloaded =
          client.Post("/admin/reload", "{}", "application/json");
      if (!reloaded.ok() || reloaded->status_code != 200) {
        ++result->reloads_failed;
      }
    }
    Stopwatch watch;
    StatusOr<net::HttpMessage> response = client.Post(
        "/v1/impute", QueryBody(queries[i]), "application/json");
    const double latency = watch.ElapsedSeconds();
    if (!response.ok() || response->status_code != 200) {
      ++result->failed;
      continue;
    }
    result->latencies.push_back(latency);
    result->rows += 1;  // One block query touches one series row.
    if (response->HasHeader("x-dmvi-degraded")) ++result->degraded;
  }
}

int Run(int argc, char** argv) {
  LoadgenOptions options;
  std::string target, port_file;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if ((value = next("--target"))) {
      target = value;
    } else if ((value = next("--port-file"))) {
      port_file = value;
    } else if ((value = next("--concurrency"))) {
      options.concurrency = std::atoi(value);
    } else if ((value = next("--synth"))) {
      options.synth = std::atoi(value);
    } else if ((value = next("--block"))) {
      options.block = std::atoi(value);
    } else if ((value = next("--workload-seed"))) {
      options.workload_seed = std::strtoull(value, nullptr, 10);
    } else if ((value = next("--workload"))) {
      options.workload_path = value;
    } else if ((value = next("--rps"))) {
      options.rps = std::atof(value);
    } else if ((value = next("--json"))) {
      options.json_path = value;
    } else if ((value = next("--name"))) {
      options.name = value;
    } else if ((value = next("--impute-csv"))) {
      options.impute_csv = value;
    } else if ((value = next("--reload-every"))) {
      options.reload_every = std::atoi(value);
    } else if ((value = next("--max-p95-ms"))) {
      options.max_p95_ms = std::atof(value);
    } else if (std::strcmp(argv[i], "--expect-degraded") == 0) {
      options.expect_degraded = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_loadgen (--target HOST:PORT | --port-file PATH)\n"
          "                    [--concurrency C] [--rps R]\n"
          "                    [--synth N [--block B] [--workload-seed S]\n"
          "                     | --workload FILE]\n"
          "                    [--json out.json] [--name LABEL]\n"
          "                    [--impute-csv out.csv] [--reload-every N]\n"
          "                    [--expect-degraded] [--max-p95-ms X]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (target.empty() && !port_file.empty()) {
    // dmvi_serve --port-file writes "host:port" once bound.
    std::ifstream in(port_file);
    if (!in || !std::getline(in, target)) {
      std::fprintf(stderr, "cannot read target from %s\n", port_file.c_str());
      return 1;
    }
  }
  if (target.empty()) {
    std::fprintf(stderr, "--target or --port-file is required (see --help)\n");
    return 2;
  }
  if (Status parsed = net::ParseHostPort(target, &options.host, &options.port);
      !parsed.ok()) {
    std::fprintf(stderr, "--target: %s\n", parsed.ToString().c_str());
    return 2;
  }
  options.concurrency = std::max(1, options.concurrency);

  // ---- Discover the served dataset shape. ---------------------------------
  net::Client probe(options.host, options.port);
  StatusOr<net::HttpMessage> health = probe.Get("/healthz");
  if (!health.ok()) {
    std::fprintf(stderr, "cannot reach %s: %s\n", target.c_str(),
                 health.status().ToString().c_str());
    return 1;
  }
  StatusOr<net::JsonValue> health_doc = net::ParseJson(health->body);
  if (!health_doc.ok() || !health_doc->at("num_series").is_number()) {
    std::fprintf(stderr, "unexpected /healthz body: %s\n",
                 health->body.c_str());
    return 1;
  }
  const int num_series =
      static_cast<int>(health_doc->at("num_series").number_value());
  const int num_times =
      static_cast<int>(health_doc->at("num_times").number_value());
  if (num_series <= 0 || num_times <= 0) {
    std::fprintf(stderr, "server reports no served dataset (%d x %d)\n",
                 num_series, num_times);
    return 1;
  }

  // ---- One-shot base-mask imputation fetch (byte-identity anchor). --------
  if (!options.impute_csv.empty()) {
    StatusOr<net::HttpMessage> imputed =
        probe.Post("/v1/impute", "{\"model\": \"default\"}",
                   "application/json", "text/csv");
    if (!imputed.ok() || imputed->status_code != 200) {
      std::fprintf(stderr, "base imputation fetch failed: %s\n",
                   imputed.ok() ? imputed->body.c_str()
                                : imputed.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(options.impute_csv, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.impute_csv.c_str());
      return 1;
    }
    out << imputed->body;
    std::printf("wrote served imputation %s (%zu bytes)\n",
                options.impute_csv.c_str(), imputed->body.size());
  }

  // ---- Workload. ----------------------------------------------------------
  std::vector<serve::WorkloadQuery> queries;
  if (!options.workload_path.empty()) {
    StatusOr<std::vector<serve::WorkloadQuery>> read =
        serve::ReadWorkload(options.workload_path);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.status().ToString().c_str());
      return 1;
    }
    queries = std::move(read).value();
  } else if (options.synth > 0) {
    queries = serve::SynthesizeWorkload(options.synth, options.block,
                                        num_series, num_times,
                                        options.workload_seed);
  }
  if (queries.empty()) return 0;

  // ---- Fire. --------------------------------------------------------------
  std::vector<WorkerResult> results(options.concurrency);
  Stopwatch wall;
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(options.concurrency);
    for (int w = 0; w < options.concurrency; ++w) {
      workers.emplace_back(RunWorker, std::cref(options), std::cref(queries),
                           w, std::cref(start), &results[w]);
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double wall_seconds = wall.ElapsedSeconds();

  std::vector<double> latencies;
  int64_t rows = 0, degraded = 0;
  int failed = 0, reloads_failed = 0;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies.begin(),
                     result.latencies.end());
    rows += result.rows;
    failed += result.failed;
    reloads_failed += result.reloads_failed;
    degraded += result.degraded;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50_ms = serve::SortedPercentile(latencies, 0.50) * 1e3;
  const double p95_ms = serve::SortedPercentile(latencies, 0.95) * 1e3;
  const double max_ms = latencies.empty() ? 0.0 : latencies.back() * 1e3;
  const double rps = wall_seconds > 0.0
                         ? static_cast<double>(latencies.size()) / wall_seconds
                         : 0.0;
  const double rows_per_second =
      wall_seconds > 0.0 ? static_cast<double>(rows) / wall_seconds : 0.0;

  std::printf(
      "%zu queries over %d connections (%d failed, %d reloads failed, "
      "%lld degraded) in %.2fs: p50 %.2f ms, p95 %.2f ms, max %.2f ms | "
      "%.1f req/s, %.1f rows/s\n",
      queries.size(), options.concurrency, failed, reloads_failed,
      static_cast<long long>(degraded), wall_seconds, p50_ms, p95_ms, max_ms,
      rps, rows_per_second);

  if (!options.json_path.empty()) {
    // Suite-compatible cell: dataset/scenario/imputer identify the row in
    // the BENCH trajectory; bench_diff compares runtime and flags a
    // vanished cell, while the latency fields ride along as provenance.
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.json_path.c_str());
      return 1;
    }
    out.precision(17);
    out << "{\n  \"cells\": [\n";
    out << "    {\"dataset\": \"" << options.name
        << "\", \"scenario\": \"loopback\", \"imputer\": \"DeepMVI-served\", "
        << "\"ok\": " << (failed == 0 && reloads_failed == 0 ? "true" : "false")
        << ", \"runtime_seconds\": " << wall_seconds
        << ", \"requests\": " << queries.size() << ", \"failed\": " << failed
        << ", \"concurrency\": " << options.concurrency
        << ", \"latency_p50_ms\": " << p50_ms
        << ", \"latency_p95_ms\": " << p95_ms
        << ", \"latency_max_ms\": " << max_ms
        << ", \"requests_per_second\": " << rps
        << ", \"rows_per_second\": " << rows_per_second
        << ", \"degraded\": " << degraded << "}\n";
    out << "  ]\n}\n";
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  if (options.expect_degraded && degraded == 0) {
    std::fprintf(stderr,
                 "expected the degradation ladder to fire but no response "
                 "carried x-dmvi-degraded\n");
    return 1;
  }
  if (options.max_p95_ms > 0.0 && p95_ms > options.max_p95_ms) {
    std::fprintf(stderr, "p95 %.2f ms exceeds the bound of %.2f ms\n", p95_ms,
                 options.max_p95_ms);
    return 1;
  }
  return failed == 0 && reloads_failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
