// dmvi_loadgen: concurrent load generator for the dmvi_serve HTTP
// front-end — the measuring half of the network serving stack (dmvi_serve
// --listen is the serving half).
//
//   dmvi_loadgen --target HOST:PORT [--concurrency C]
//                (--synth N [--block B] [--workload-seed S] |
//                 --workload FILE)
//                [--rps R] [--json out.json] [--name LABEL]
//                [--impute-csv out.csv] [--reload-every N]
//                [--expect-degraded] [--max-p95-ms X]
//
// Queries are the same `row,t_start,block_len` block-hiding units
// dmvi_serve replays in-process (the dataset shape is discovered via GET
// /healthz, so synthesized workloads match the served dataset). C client
// connections issue them concurrently over keep-alive; --rps > 0 paces
// dispatch open-loop against a fixed schedule (requests are sent when
// *scheduled*, late or not, so server slowdowns show up as latency rather
// than reduced load) while --rps 0 runs closed-loop at full speed.
//
// Reports p50/p95/max latency and request/row throughput; --json writes a
// suite-compatible cells file (dataset/scenario/imputer keys) so the
// numbers ride the BENCH_* perf trajectory and bench_diff gating.
//
// Overload mode: point --rps well past what the server sustains at a
// server started with --degrade-watermark/--shed-watermark, and the
// degradation ladder keeps every request answered — degraded responses
// (x-dmvi-degraded header) are counted separately from failures.
// --expect-degraded exits non-zero if the ladder never fired (the run
// didn't actually prove anything about overload), and --max-p95-ms X
// exits non-zero if p95 latency exceeded X — together they make "bounded
// p95, zero failed, degraded > 0 at N x sustainable load" a CI assertion.
//
// --impute-csv fetches the served dataset's base-mask imputation as
// text/csv and writes the body verbatim: byte-identical to dmvi_serve /
// dmvi_train --impute-csv output for the same checkpoint + dataset flags
// (the CI loopback smoke `cmp`s exactly this). --reload-every N posts
// /admin/reload every N queries mid-run, proving warm reloads drop zero
// requests.
//
// Observability hooks: --request-id-prefix P stamps request i with
// `x-request-id: P-i` and checks the echoed x-dmvi-request-id — the same
// IDs appear in the server's --trace-out file, so any client-side latency
// outlier can be looked up as a span tree. --check-server-counters scrapes
// GET /metrics (Prometheus text) before and after the run and asserts the
// server-side counter deltas match what this process observed exactly:
// requests_total grew by completed + shed, degraded_total by the
// x-dmvi-degraded count, shed_total by the 503 count. The report also
// fetches /metrics.json afterwards and prints server-observed p50/p95
// (queue + compute, from the server's histogram) beside client-observed
// p50/p95 (adds HTTP encode/transport) — the gap between them is the
// network front-end's cost. --scrape-metrics FILE is a standalone mode:
// fetch /metrics, write it verbatim, exit (CI uses it to snapshot a
// server mid-run from a second process). --fetch PATH [--fetch-out FILE]
// generalizes it to any GET path — CI pulls /debug/profile?seconds=N
// mid-run this way. --slow-ms X (with --request-id-prefix) reports every
// request over X ms, then fetches the server's /debug/slow flight-recorder
// ring and cross-checks it: each server-recorded slow request with our
// prefix must be one we completed, at a client latency >= the
// server-observed one.
//
// --check-quality quiet|drifted exercises the server's model-quality
// monitor end to end: fetch the served dataset's completed matrix as CSV,
// optionally apply the kDrift sensor-drift transform (--drift-rate sets
// the sawtooth amplitude in per-series stddev units), replay the workload
// as inline-values requests (the monitor observes the *request's*
// distribution, which query mode never shifts), then assert the
// /debug/quality verdict: "drifting" for a drifted replay, "ok" for a
// matched one. Exits non-zero on the wrong verdict, so CI proves the
// detector both fires and stays silent.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "scenario/scenarios.h"
#include "serve/telemetry.h"
#include "serve/workload.h"
#include "tensor/matrix.h"

namespace deepmvi {
namespace {

struct LoadgenOptions {
  std::string host;
  int port = 0;
  int concurrency = 4;
  int synth = 64;
  int block = 10;
  uint64_t workload_seed = 11;
  std::string workload_path;
  double rps = 0.0;  // 0 = closed loop, full speed.
  std::string json_path;
  std::string name = "loadgen";
  std::string impute_csv;
  int reload_every = 0;  // 0 = never.
  bool expect_degraded = false;
  double max_p95_ms = 0.0;  // 0 = no bound.
  std::string request_id_prefix;  // empty = let the server mint IDs.
  bool check_server_counters = false;
  std::string scrape_metrics;  // non-empty = standalone scrape mode.
  std::string fetch;           // non-empty = standalone GET mode.
  std::string fetch_out;       // body destination ("" = stdout).
  double slow_ms = 0.0;        // 0 = no slow-request reporting.
  /// "quiet" or "drifted": drift-detector end-to-end check mode. Replays
  /// the synthesized workload as inline-values requests built from the
  /// served dataset (optionally kDrift-transformed), then asserts the
  /// server's /debug/quality verdict.
  std::string check_quality;
  double drift_rate = 1.0;  // kDrift sawtooth amplitude (stddev units).
};

/// One worker's share of the run: latencies (seconds) for its completed
/// requests plus failure and reload counts.
struct WorkerResult {
  std::vector<double> latencies;
  int64_t rows = 0;
  int failed = 0;
  int reloads_failed = 0;
  int64_t degraded = 0;
  int64_t shed = 0;           // 503 responses (a subset of `failed`).
  int64_t id_mismatches = 0;  // x-dmvi-request-id did not echo ours.
  /// Client-observed latency per completed request id (only collected
  /// under --slow-ms, which requires --request-id-prefix): the data the
  /// /debug/slow cross-check needs.
  std::vector<std::pair<std::string, double>> latency_by_id;
};

std::string QueryBody(const serve::WorkloadQuery& query) {
  return "{\"model\": \"default\", \"query\": {\"row\": " +
         std::to_string(query.row) +
         ", \"t_start\": " + std::to_string(query.t_start) +
         ", \"block_len\": " + std::to_string(query.block_len) + "}}";
}

void RunWorker(const LoadgenOptions& options,
               const std::vector<serve::WorkloadQuery>& queries, int worker,
               const std::chrono::steady_clock::time_point& start,
               WorkerResult* result) {
  net::Client client(options.host, options.port);
  for (size_t i = worker; i < queries.size(); i += options.concurrency) {
    if (options.rps > 0.0) {
      // Open loop: request i is *scheduled* at i / rps seconds into the
      // run; sleep until then, never past it. A slow server makes us late
      // (latency grows) but does not reduce the offered load.
      const auto scheduled =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(i / options.rps));
      std::this_thread::sleep_until(scheduled);
    }
    if (options.reload_every > 0 &&
        i % static_cast<size_t>(options.reload_every) == 0 && i > 0) {
      StatusOr<net::HttpMessage> reloaded =
          client.Post("/admin/reload", "{}", "application/json");
      if (!reloaded.ok() || reloaded->status_code != 200) {
        ++result->reloads_failed;
      }
    }
    net::HttpMessage request;
    request.method = "POST";
    request.target = "/v1/impute";
    request.body = QueryBody(queries[i]);
    request.SetHeader("content-type", "application/json");
    std::string request_id;
    if (!options.request_id_prefix.empty()) {
      // Deterministic per-query IDs (P-0, P-1, ...) that the server echoes
      // back and stamps onto every span of this request in --trace-out.
      request_id = options.request_id_prefix + "-" + std::to_string(i);
      request.SetHeader("x-request-id", request_id);
    }
    Stopwatch watch;
    StatusOr<net::HttpMessage> response = client.RoundTrip(request);
    const double latency = watch.ElapsedSeconds();
    if (!request_id.empty() && response.ok() &&
        response->Header("x-dmvi-request-id") != request_id) {
      ++result->id_mismatches;
    }
    if (!response.ok() || response->status_code != 200) {
      ++result->failed;
      if (response.ok() && response->status_code == 503) ++result->shed;
      continue;
    }
    result->latencies.push_back(latency);
    result->rows += 1;  // One block query touches one series row.
    if (response->HasHeader("x-dmvi-degraded")) ++result->degraded;
    if (options.slow_ms > 0.0 && !request_id.empty()) {
      result->latency_by_id.emplace_back(request_id, latency);
    }
  }
}

/// Parses a WriteDataTensor-format CSV body ('#'-prefixed dimension header
/// lines, then one comma-separated row of numbers per series) into a
/// Matrix. The loadgen keeps its own tiny parser because data/io.h reads
/// from paths, not strings, and the body never leaves memory here.
StatusOr<Matrix> ParseCsvBody(const std::string& body) {
  std::vector<std::vector<double>> rows;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    if (end > pos && body[pos] != '#') {
      std::vector<double> row;
      const char* cursor = body.c_str() + pos;
      const char* line_end = body.c_str() + end;
      while (cursor < line_end) {
        char* after = nullptr;
        row.push_back(std::strtod(cursor, &after));
        if (after == cursor) {
          return Status::InvalidArgument("unparseable CSV cell at byte " +
                                         std::to_string(cursor - body.c_str()));
        }
        cursor = after;
        if (cursor < line_end && *cursor == ',') ++cursor;
      }
      if (!rows.empty() && row.size() != rows.front().size()) {
        return Status::InvalidArgument("ragged CSV row " +
                                       std::to_string(rows.size()));
      }
      if (!row.empty()) rows.push_back(std::move(row));
    }
    pos = end + 1;
  }
  if (rows.empty()) return Status::InvalidArgument("CSV body holds no rows");
  Matrix values(static_cast<int>(rows.size()),
                static_cast<int>(rows.front().size()));
  for (int r = 0; r < values.rows(); ++r) {
    for (int t = 0; t < values.cols(); ++t) {
      values(r, t) = rows[static_cast<size_t>(r)][static_cast<size_t>(t)];
    }
  }
  return values;
}

/// Inline-values /v1/impute body: the full matrix rendered at %.17g with
/// `null` at the query's hidden block — a self-contained request whose
/// input distribution the server's quality monitor observes (unlike query
/// mode, which reads the server's own dataset and so can never drift).
std::string InlineQueryBody(const Matrix& values,
                            const serve::WorkloadQuery& query) {
  std::string body = "{\"model\": \"default\", \"values\": [";
  char cell[40];
  for (int r = 0; r < values.rows(); ++r) {
    body += r == 0 ? "[" : ", [";
    for (int t = 0; t < values.cols(); ++t) {
      if (t > 0) body += ", ";
      if (r == query.row && t >= query.t_start &&
          t < query.t_start + query.block_len) {
        body += "null";
      } else {
        std::snprintf(cell, sizeof(cell), "%.17g", values(r, t));
        body += cell;
      }
    }
    body += "]";
  }
  body += "]}";
  return body;
}

/// Fetches GET /metrics and returns the Prometheus text body.
StatusOr<std::string> ScrapeMetrics(net::Client* client) {
  StatusOr<net::HttpMessage> scraped = client->Get("/metrics");
  if (!scraped.ok()) return scraped.status();
  if (scraped->status_code != 200) {
    return Status::Internal("GET /metrics returned " +
                            std::to_string(scraped->status_code));
  }
  return std::move(scraped->body);
}

/// Value of an unlabeled sample line `name value` in Prometheus text
/// exposition, or -1 when the metric is absent.
double PrometheusValue(const std::string& text, const std::string& name) {
  const std::string prefix = name + " ";
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t end = text.find('\n', pos);
    const size_t len = (end == std::string::npos ? text.size() : end) - pos;
    if (len > prefix.size() && text.compare(pos, prefix.size(), prefix) == 0) {
      return std::atof(text.c_str() + pos + prefix.size());
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return -1.0;
}

int Run(int argc, char** argv) {
  LoadgenOptions options;
  std::string target, port_file;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    const char* value = nullptr;
    if ((value = next("--target"))) {
      target = value;
    } else if ((value = next("--port-file"))) {
      port_file = value;
    } else if ((value = next("--concurrency"))) {
      options.concurrency = std::atoi(value);
    } else if ((value = next("--synth"))) {
      options.synth = std::atoi(value);
    } else if ((value = next("--block"))) {
      options.block = std::atoi(value);
    } else if ((value = next("--workload-seed"))) {
      options.workload_seed = std::strtoull(value, nullptr, 10);
    } else if ((value = next("--workload"))) {
      options.workload_path = value;
    } else if ((value = next("--rps"))) {
      options.rps = std::atof(value);
    } else if ((value = next("--json"))) {
      options.json_path = value;
    } else if ((value = next("--name"))) {
      options.name = value;
    } else if ((value = next("--impute-csv"))) {
      options.impute_csv = value;
    } else if ((value = next("--reload-every"))) {
      options.reload_every = std::atoi(value);
    } else if ((value = next("--max-p95-ms"))) {
      options.max_p95_ms = std::atof(value);
    } else if ((value = next("--request-id-prefix"))) {
      options.request_id_prefix = value;
    } else if ((value = next("--scrape-metrics"))) {
      options.scrape_metrics = value;
    } else if ((value = next("--fetch"))) {
      options.fetch = value;
    } else if ((value = next("--fetch-out"))) {
      options.fetch_out = value;
    } else if ((value = next("--slow-ms"))) {
      options.slow_ms = std::atof(value);
    } else if ((value = next("--check-quality"))) {
      options.check_quality = value;
      if (options.check_quality != "quiet" &&
          options.check_quality != "drifted") {
        std::fprintf(stderr, "--check-quality must be quiet or drifted\n");
        return 2;
      }
    } else if ((value = next("--drift-rate"))) {
      options.drift_rate = std::atof(value);
    } else if ((value = next("--log-level"))) {
      if (!ParseLogSeverity(value, &MinLogSeverity())) {
        std::fprintf(stderr,
                     "--log-level must be debug, info, warning, or error\n");
        return 2;
      }
    } else if ((value = next("--log-format"))) {
      if (!ParseLogFormat(value, &GlobalLogFormat())) {
        std::fprintf(stderr, "--log-format must be plain, kv, or json\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--check-server-counters") == 0) {
      options.check_server_counters = true;
    } else if (std::strcmp(argv[i], "--expect-degraded") == 0) {
      options.expect_degraded = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_loadgen (--target HOST:PORT | --port-file PATH)\n"
          "                    [--concurrency C] [--rps R]\n"
          "                    [--synth N [--block B] [--workload-seed S]\n"
          "                     | --workload FILE]\n"
          "                    [--json out.json] [--name LABEL]\n"
          "                    [--impute-csv out.csv] [--reload-every N]\n"
          "                    [--expect-degraded] [--max-p95-ms X]\n"
          "                    [--request-id-prefix P]\n"
          "                    [--check-server-counters]\n"
          "                    [--slow-ms X]\n"
          "                    [--check-quality quiet|drifted "
          "[--drift-rate R]]\n"
          "                    [--scrape-metrics FILE]\n"
          "                    [--fetch PATH [--fetch-out FILE]]\n"
          "                    [--log-level debug|info|warning|error]\n"
          "                    [--log-format plain|kv|json]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (target.empty() && !port_file.empty()) {
    // dmvi_serve --port-file writes "host:port" once bound.
    std::ifstream in(port_file);
    if (!in || !std::getline(in, target)) {
      std::fprintf(stderr, "cannot read target from %s\n", port_file.c_str());
      return 1;
    }
  }
  if (target.empty()) {
    std::fprintf(stderr, "--target or --port-file is required (see --help)\n");
    return 2;
  }
  if (Status parsed = net::ParseHostPort(target, &options.host, &options.port);
      !parsed.ok()) {
    std::fprintf(stderr, "--target: %s\n", parsed.ToString().c_str());
    return 2;
  }
  options.concurrency = std::max(1, options.concurrency);
  if (options.slow_ms > 0.0 && options.request_id_prefix.empty()) {
    std::fprintf(stderr,
                 "--slow-ms needs --request-id-prefix (the /debug/slow "
                 "cross-check matches requests by id)\n");
    return 2;
  }

  // ---- Standalone scrape: snapshot /metrics and exit. ---------------------
  // Runs before the /healthz shape probe so a second loadgen process can
  // snapshot a server mid-run without generating any load of its own.
  if (!options.scrape_metrics.empty()) {
    net::Client scraper(options.host, options.port);
    StatusOr<std::string> text = ScrapeMetrics(&scraper);
    if (!text.ok()) {
      std::fprintf(stderr, "metrics scrape failed: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(options.scrape_metrics, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.scrape_metrics.c_str());
      return 1;
    }
    out << *text;
    std::printf("wrote metrics snapshot %s (%zu bytes)\n",
                options.scrape_metrics.c_str(), text->size());
    return 0;
  }

  // ---- Standalone fetch: GET an arbitrary path and exit. ------------------
  // CI uses it to pull /debug/profile?seconds=N (which blocks server-side
  // for the whole window) and the /debug/* JSON from a second process while
  // a loadgen run is in flight. Non-200 is a failure.
  if (!options.fetch.empty()) {
    net::Client fetcher(options.host, options.port);
    StatusOr<net::HttpMessage> fetched = fetcher.Get(options.fetch);
    if (!fetched.ok()) {
      std::fprintf(stderr, "GET %s failed: %s\n", options.fetch.c_str(),
                   fetched.status().ToString().c_str());
      return 1;
    }
    if (fetched->status_code != 200) {
      std::fprintf(stderr, "GET %s returned %d: %s\n", options.fetch.c_str(),
                   fetched->status_code, fetched->body.c_str());
      return 1;
    }
    if (options.fetch_out.empty()) {
      std::fwrite(fetched->body.data(), 1, fetched->body.size(), stdout);
    } else {
      std::ofstream out(options.fetch_out, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     options.fetch_out.c_str());
        return 1;
      }
      out << fetched->body;
      std::printf("wrote %s (%zu bytes from %s)\n", options.fetch_out.c_str(),
                  fetched->body.size(), options.fetch.c_str());
    }
    return 0;
  }

  // ---- Discover the served dataset shape. ---------------------------------
  net::Client probe(options.host, options.port);
  StatusOr<net::HttpMessage> health = probe.Get("/healthz");
  if (!health.ok()) {
    std::fprintf(stderr, "cannot reach %s: %s\n", target.c_str(),
                 health.status().ToString().c_str());
    return 1;
  }
  StatusOr<net::JsonValue> health_doc = net::ParseJson(health->body);
  if (!health_doc.ok() || !health_doc->at("num_series").is_number()) {
    std::fprintf(stderr, "unexpected /healthz body: %s\n",
                 health->body.c_str());
    return 1;
  }
  const int num_series =
      static_cast<int>(health_doc->at("num_series").number_value());
  const int num_times =
      static_cast<int>(health_doc->at("num_times").number_value());
  if (num_series <= 0 || num_times <= 0) {
    std::fprintf(stderr, "server reports no served dataset (%d x %d)\n",
                 num_series, num_times);
    return 1;
  }

  // ---- One-shot base-mask imputation fetch (byte-identity anchor). --------
  if (!options.impute_csv.empty()) {
    StatusOr<net::HttpMessage> imputed =
        probe.Post("/v1/impute", "{\"model\": \"default\"}",
                   "application/json", "text/csv");
    if (!imputed.ok() || imputed->status_code != 200) {
      std::fprintf(stderr, "base imputation fetch failed: %s\n",
                   imputed.ok() ? imputed->body.c_str()
                                : imputed.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(options.impute_csv, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.impute_csv.c_str());
      return 1;
    }
    out << imputed->body;
    std::printf("wrote served imputation %s (%zu bytes)\n",
                options.impute_csv.c_str(), imputed->body.size());
  }

  // ---- Workload. ----------------------------------------------------------
  std::vector<serve::WorkloadQuery> queries;
  if (!options.workload_path.empty()) {
    StatusOr<std::vector<serve::WorkloadQuery>> read =
        serve::ReadWorkload(options.workload_path);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.status().ToString().c_str());
      return 1;
    }
    queries = std::move(read).value();
  } else if (options.synth > 0) {
    queries = serve::SynthesizeWorkload(options.synth, options.block,
                                        num_series, num_times,
                                        options.workload_seed);
  }
  if (queries.empty()) return 0;

  // ---- Drift-detector end-to-end check. -----------------------------------
  // Fetches the served dataset's completed matrix, optionally applies the
  // kDrift sensor-drift transform (deterministic per-series sawtooth), and
  // replays the workload as inline-values requests so the quality monitor
  // observes *this* distribution rather than the server's own dataset.
  // Afterwards the server's /debug/quality verdict must be "drifting"
  // (mode drifted) or "ok" (mode quiet) — both directions are asserted so
  // CI proves the detector fires AND stays silent on matched input.
  if (!options.check_quality.empty()) {
    StatusOr<net::HttpMessage> base =
        probe.Post("/v1/impute", "{\"model\": \"default\"}",
                   "application/json", "text/csv");
    if (!base.ok() || base->status_code != 200) {
      std::fprintf(stderr, "base imputation fetch failed: %s\n",
                   base.ok() ? base->body.c_str()
                             : base.status().ToString().c_str());
      return 1;
    }
    StatusOr<Matrix> parsed = ParseCsvBody(base->body);
    if (!parsed.ok()) {
      std::fprintf(stderr, "cannot parse served CSV: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    Matrix values = std::move(parsed).value();
    if (options.check_quality == "drifted") {
      ScenarioConfig drift;
      drift.kind = ScenarioKind::kDrift;
      drift.percent_incomplete = 1.0;
      drift.drift_rate = options.drift_rate;
      values = ApplyScenarioTransform(drift, values);
    }
    int sent = 0, check_failed = 0;
    for (const serve::WorkloadQuery& query : queries) {
      net::HttpMessage request;
      request.method = "POST";
      request.target = "/v1/impute";
      request.body = InlineQueryBody(values, query);
      request.SetHeader("content-type", "application/json");
      StatusOr<net::HttpMessage> response = probe.RoundTrip(request);
      ++sent;
      if (!response.ok() || response->status_code != 200) ++check_failed;
    }
    if (check_failed > 0) {
      std::fprintf(stderr, "quality check: %d of %d inline requests failed\n",
                   check_failed, sent);
      return 1;
    }
    StatusOr<net::HttpMessage> quality = probe.Get("/debug/quality");
    if (!quality.ok() || quality->status_code != 200) {
      std::fprintf(stderr, "GET /debug/quality failed: %s\n",
                   quality.ok() ? quality->body.c_str()
                                : quality.status().ToString().c_str());
      return 1;
    }
    StatusOr<net::JsonValue> doc = net::ParseJson(quality->body);
    if (!doc.ok() || !doc->at("quality").is_string()) {
      std::fprintf(stderr, "unexpected /debug/quality body: %s\n",
                   quality->body.c_str());
      return 1;
    }
    const std::string& verdict = doc->at("quality").string_value();
    double max_drift = -1.0;
    for (const net::JsonValue& model : doc->at("models").array_items()) {
      if (model.at("drift_score").is_number()) {
        max_drift = std::max(max_drift,
                             model.at("drift_score").number_value());
      }
    }
    const std::string expected =
        options.check_quality == "drifted" ? "drifting" : "ok";
    std::printf(
        "quality check (%s): %d inline requests, server verdict \"%s\", "
        "max drift score %.4f (threshold %.4f)\n",
        options.check_quality.c_str(), sent, verdict.c_str(), max_drift,
        doc->at("drift_threshold").number_value());
    if (verdict != expected) {
      std::fprintf(stderr,
                   "quality check: expected verdict \"%s\" for a %s "
                   "workload, server reports \"%s\"\n",
                   expected.c_str(), options.check_quality.c_str(),
                   verdict.c_str());
      return 1;
    }
    return 0;
  }

  // ---- Counter baseline (taken after the --impute-csv fetch so that
  // one-shot request is excluded from the delta). --------------------------
  std::string metrics_before;
  if (options.check_server_counters) {
    StatusOr<std::string> text = ScrapeMetrics(&probe);
    if (!text.ok()) {
      std::fprintf(stderr, "pre-run metrics scrape failed: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    metrics_before = std::move(text).value();
  }

  // ---- Fire. --------------------------------------------------------------
  std::vector<WorkerResult> results(options.concurrency);
  Stopwatch wall;
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(options.concurrency);
    for (int w = 0; w < options.concurrency; ++w) {
      workers.emplace_back(RunWorker, std::cref(options), std::cref(queries),
                           w, std::cref(start), &results[w]);
    }
    for (std::thread& worker : workers) worker.join();
  }
  const double wall_seconds = wall.ElapsedSeconds();

  std::vector<double> latencies;
  std::map<std::string, double> latency_by_id;
  int64_t rows = 0, degraded = 0, shed = 0, id_mismatches = 0;
  int failed = 0, reloads_failed = 0;
  for (const WorkerResult& result : results) {
    latencies.insert(latencies.end(), result.latencies.begin(),
                     result.latencies.end());
    rows += result.rows;
    failed += result.failed;
    reloads_failed += result.reloads_failed;
    degraded += result.degraded;
    shed += result.shed;
    id_mismatches += result.id_mismatches;
    for (const auto& [id, latency] : result.latency_by_id) {
      latency_by_id[id] = latency;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50_ms = serve::SortedPercentile(latencies, 0.50) * 1e3;
  const double p95_ms = serve::SortedPercentile(latencies, 0.95) * 1e3;
  const double max_ms = latencies.empty() ? 0.0 : latencies.back() * 1e3;
  const double rps = wall_seconds > 0.0
                         ? static_cast<double>(latencies.size()) / wall_seconds
                         : 0.0;
  const double rows_per_second =
      wall_seconds > 0.0 ? static_cast<double>(rows) / wall_seconds : 0.0;

  std::printf(
      "%zu queries over %d connections (%d failed of which %lld shed, "
      "%d reloads failed, %lld degraded) in %.2fs: p50 %.2f ms, p95 %.2f ms, "
      "max %.2f ms | %.1f req/s, %.1f rows/s\n",
      queries.size(), options.concurrency, failed,
      static_cast<long long>(shed), reloads_failed,
      static_cast<long long>(degraded), wall_seconds, p50_ms, p95_ms, max_ms,
      rps, rows_per_second);

  // ---- Server-observed latency beside client-observed. --------------------
  // The server's histogram covers queue wait + batch compute; the client's
  // stopwatch additionally sees HTTP decode/encode and the loopback
  // transport — the gap between the two p95s is the front-end's cost.
  double server_p50_ms = -1.0, server_p95_ms = -1.0;
  {
    StatusOr<net::HttpMessage> stats = probe.Get("/metrics.json");
    if (stats.ok() && stats->status_code == 200) {
      StatusOr<net::JsonValue> doc = net::ParseJson(stats->body);
      if (doc.ok() && doc->at("latency_p95_ms").is_number()) {
        server_p50_ms = doc->at("latency_p50_ms").number_value();
        server_p95_ms = doc->at("latency_p95_ms").number_value();
        std::printf(
            "latency attribution: server-observed p50 %.2f ms, p95 %.2f ms "
            "(queue + compute) vs client-observed p50 %.2f ms, p95 %.2f ms "
            "(adds HTTP + transport)\n",
            server_p50_ms, server_p95_ms, p50_ms, p95_ms);
      }
    }
  }
  if (!options.request_id_prefix.empty()) {
    std::printf("request IDs: %s-0..%s-%zu, %lld echo mismatches\n",
                options.request_id_prefix.c_str(),
                options.request_id_prefix.c_str(), queries.size() - 1,
                static_cast<long long>(id_mismatches));
  }

  // ---- Slow-request report + /debug/slow cross-check. ---------------------
  // The client stopwatch encloses the server's (it adds HTTP + transport),
  // so every request the server's flight recorder calls slow must show a
  // client latency at least as large — any violation means the recorder
  // and the client disagree about what happened, which is a bug.
  bool slow_ok = true;
  if (options.slow_ms > 0.0) {
    int64_t client_slow = 0;
    for (const auto& [id, latency] : latency_by_id) {
      if (latency * 1e3 >= options.slow_ms) {
        ++client_slow;
        std::printf("slow (client): %s %.2f ms\n", id.c_str(), latency * 1e3);
      }
    }
    std::printf("%lld of %zu requests over %.1f ms client-side\n",
                static_cast<long long>(client_slow), latency_by_id.size(),
                options.slow_ms);
    StatusOr<net::HttpMessage> slow = probe.Get("/debug/slow");
    if (!slow.ok() || slow->status_code != 200) {
      std::fprintf(stderr, "GET /debug/slow failed: %s\n",
                   slow.ok() ? slow->body.c_str()
                             : slow.status().ToString().c_str());
      slow_ok = false;
    } else {
      StatusOr<net::JsonValue> doc = net::ParseJson(slow->body);
      if (!doc.ok() || !doc->at("records").is_array()) {
        std::fprintf(stderr, "unexpected /debug/slow body: %s\n",
                     slow->body.c_str());
        slow_ok = false;
      } else {
        const std::string id_prefix = options.request_id_prefix + "-";
        for (const net::JsonValue& record : doc->at("records").array_items()) {
          const std::string& id = record.at("request_id").string_value();
          if (id.compare(0, id_prefix.size(), id_prefix) != 0) continue;
          const double server_latency =
              record.at("latency_seconds").number_value();
          std::printf("slow (server): %s %.2f ms\n", id.c_str(),
                      server_latency * 1e3);
          const auto it = latency_by_id.find(id);
          if (it == latency_by_id.end()) {
            std::fprintf(stderr,
                         "slow check: server recorded %s but this client "
                         "never completed it\n",
                         id.c_str());
            slow_ok = false;
          } else if (it->second + 1e-6 < server_latency) {
            std::fprintf(stderr,
                         "slow check: %s client latency %.3f ms below the "
                         "server-observed %.3f ms\n",
                         id.c_str(), it->second * 1e3, server_latency * 1e3);
            slow_ok = false;
          }
        }
        if (slow_ok) {
          std::printf(
              "slow check: every server-recorded slow request is accounted "
              "for client-side (threshold %.6f s)\n",
              doc->at("slow_threshold_seconds").number_value());
        }
      }
    }
  }

  // ---- Counter consistency: server deltas must equal what we observed. ----
  bool counters_ok = true;
  if (options.check_server_counters) {
    StatusOr<std::string> text = ScrapeMetrics(&probe);
    if (!text.ok()) {
      std::fprintf(stderr, "post-run metrics scrape failed: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    // Requests that never reached the service (connect/parse failures) are
    // invisible to its counters: expected requests delta is completions
    // plus sheds (a shed is RecordRequest'ed as a failure server-side).
    struct Check {
      const char* metric;
      int64_t expected_delta;
    };
    const Check checks[] = {
        {"dmvi_requests_total",
         static_cast<int64_t>(latencies.size()) + shed},
        {"dmvi_degraded_total", degraded},
        {"dmvi_shed_total", shed},
    };
    for (const Check& check : checks) {
      const double before = PrometheusValue(metrics_before, check.metric);
      const double after = PrometheusValue(*text, check.metric);
      if (before < 0.0 || after < 0.0) {
        std::fprintf(stderr, "counter check: %s missing from /metrics\n",
                     check.metric);
        counters_ok = false;
        continue;
      }
      const int64_t delta = static_cast<int64_t>(after - before);
      if (delta != check.expected_delta) {
        std::fprintf(stderr,
                     "counter check: %s grew by %lld, loadgen observed %lld\n",
                     check.metric, static_cast<long long>(delta),
                     static_cast<long long>(check.expected_delta));
        counters_ok = false;
      }
    }
    if (counters_ok) {
      std::printf(
          "counter check: server deltas match (requests %lld, degraded %lld, "
          "shed %lld)\n",
          static_cast<long long>(latencies.size()) + shed,
          static_cast<long long>(degraded), static_cast<long long>(shed));
    }
  }

  if (!options.json_path.empty()) {
    // Suite-compatible cell: dataset/scenario/imputer identify the row in
    // the BENCH trajectory; bench_diff compares runtime and flags a
    // vanished cell, while the latency fields ride along as provenance.
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.json_path.c_str());
      return 1;
    }
    out.precision(17);
    out << "{\n  \"cells\": [\n";
    out << "    {\"dataset\": \"" << options.name
        << "\", \"scenario\": \"loopback\", \"imputer\": \"DeepMVI-served\", "
        << "\"ok\": " << (failed == 0 && reloads_failed == 0 ? "true" : "false")
        << ", \"runtime_seconds\": " << wall_seconds
        << ", \"requests\": " << queries.size() << ", \"failed\": " << failed
        << ", \"concurrency\": " << options.concurrency
        << ", \"latency_p50_ms\": " << p50_ms
        << ", \"latency_p95_ms\": " << p95_ms
        << ", \"latency_max_ms\": " << max_ms
        << ", \"requests_per_second\": " << rps
        << ", \"rows_per_second\": " << rows_per_second
        << ", \"degraded\": " << degraded << ", \"shed\": " << shed;
    if (server_p95_ms >= 0.0) {
      out << ", \"server_latency_p50_ms\": " << server_p50_ms
          << ", \"server_latency_p95_ms\": " << server_p95_ms;
    }
    out << "}\n";
    out << "  ]\n}\n";
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  if (options.expect_degraded && degraded == 0) {
    std::fprintf(stderr,
                 "expected the degradation ladder to fire but no response "
                 "carried x-dmvi-degraded\n");
    return 1;
  }
  if (options.max_p95_ms > 0.0 && p95_ms > options.max_p95_ms) {
    std::fprintf(stderr, "p95 %.2f ms exceeds the bound of %.2f ms\n", p95_ms,
                 options.max_p95_ms);
    return 1;
  }
  if (id_mismatches > 0) {
    std::fprintf(stderr,
                 "%lld responses failed to echo the client x-request-id\n",
                 static_cast<long long>(id_mismatches));
    return 1;
  }
  if (!counters_ok || !slow_ok) return 1;
  return failed == 0 && reloads_failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
