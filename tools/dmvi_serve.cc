// dmvi_serve: load a DeepMVI checkpoint into the long-lived imputation
// service and replay a query workload against it — the serving half of the
// train-once/serve-many split (dmvi_train is the other half).
//
//   dmvi_serve --model model.dmvi --preset AirQ [--scale quick|full]
//              [--scenario MCAR] [--scenario-seed S] [--dataset-seed S]
//   dmvi_serve --model model.dmvi --input data.csv [--mask mask.csv]
//
// Workload (each query hides one block and asks the service to fill it):
//   --workload FILE            replay `row,t_start,block_len` lines
//   --synth N [--block B]      N random block queries (deterministic in
//                              --workload-seed)
// Service knobs: --batch (micro-batch cap), --linger-ms, --threads.
// Reports p50/p95/max latency, rows/sec, and the full telemetry JSON
// (--telemetry-json PATH to persist it).
//
// --impute-csv PATH sends the dataset's own base mask through the service
// once and writes the completed matrix; for a checkpoint from dmvi_train
// with the same dataset flags this output is byte-identical to
// dmvi_train's --impute-csv (proving save/load exactness across
// processes).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "data/io.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "tools/dataset_flags.h"

namespace deepmvi {
namespace {

int Run(int argc, char** argv) {
  std::string model_path, workload_path, impute_csv, telemetry_json;
  tools::DatasetSpec dataset_spec;
  uint64_t workload_seed = 11;
  int synth = 0;
  int block = 10;
  serve::ServiceConfig service_config;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    if (tools::ParseDatasetFlag(argc, argv, &i, &dataset_spec,
                                &missing_value)) {
      continue;
    }
    auto next = [&](const char* flag) {
      return tools::NextFlagValue(argc, argv, &i, flag, &missing_value);
    };
    const char* value = nullptr;
    if ((value = next("--model"))) {
      model_path = value;
    } else if ((value = next("--workload"))) {
      workload_path = value;
    } else if ((value = next("--synth"))) {
      synth = std::atoi(value);
    } else if ((value = next("--block"))) {
      block = std::atoi(value);
    } else if ((value = next("--workload-seed"))) {
      workload_seed = std::strtoull(value, nullptr, 10);
    } else if ((value = next("--impute-csv"))) {
      impute_csv = value;
    } else if ((value = next("--telemetry-json"))) {
      telemetry_json = value;
    } else if ((value = next("--batch"))) {
      service_config.max_batch_size = std::atoi(value);
    } else if ((value = next("--linger-ms"))) {
      service_config.batch_linger_ms = std::atof(value);
    } else if ((value = next("--threads"))) {
      service_config.threads = std::atoi(value);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_serve --model model.dmvi\n"
          "                  (--preset NAME [--scale quick|full]\n"
          "                   [--scenario MCAR] [--scenario-seed S]\n"
          "                   [--dataset-seed S] | --input data.csv\n"
          "                   [--mask mask.csv])\n"
          "                  [--workload FILE | --synth N [--block B]\n"
          "                   [--workload-seed S]]\n"
          "                  [--batch N] [--linger-ms X] [--threads N]\n"
          "                  [--impute-csv out.csv] [--telemetry-json out.json]\n");
      return 0;
    } else if (missing_value) {
      std::fprintf(stderr, "missing value for %s (see --help)\n", argv[i]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (model_path.empty()) {
    std::fprintf(stderr, "--model is required (see --help)\n");
    return 2;
  }

  // ---- Dataset + base mask (same construction as dmvi_train). ------------
  auto data = std::make_shared<DataTensor>();
  Mask mask;
  if (int exit_code =
          tools::BuildDatasetAndMask(dataset_spec, data.get(), &mask)) {
    return exit_code;
  }

  // ---- Bring the service up with the checkpoint. -------------------------
  serve::ImputationService service(service_config);
  Status loaded = service.registry().LoadFromFile("default", model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", model_path.c_str(),
                 loaded.ToString().c_str());
    return 1;
  }
  const TrainedDeepMvi* model = service.registry().Get("default");
  std::printf("serving %s: %lld parameters, %d series, window %d\n",
              model_path.c_str(),
              static_cast<long long>(model->num_parameters()),
              model->num_series(), model->config().window);

  // ---- One-shot full imputation (cross-process exactness check). ---------
  if (!impute_csv.empty()) {
    serve::ImputationRequest request;
    request.model = "default";
    request.data = data;
    request.mask = mask;
    serve::ImputationResponse response = service.Impute(request);
    if (!response.status.ok()) {
      std::fprintf(stderr, "imputation failed: %s\n",
                   response.status.ToString().c_str());
      return 1;
    }
    Status status = WriteDataTensor(
        DataTensor(data->dims(), std::move(response.imputed)), impute_csv);
    if (!status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", impute_csv.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote served imputation %s (%.2f ms)\n", impute_csv.c_str(),
                response.latency_seconds * 1e3);
  }

  // ---- Workload replay through the micro-batching path. ------------------
  std::vector<serve::WorkloadQuery> queries;
  if (!workload_path.empty()) {
    StatusOr<std::vector<serve::WorkloadQuery>> read =
        serve::ReadWorkload(workload_path);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.status().ToString().c_str());
      return 1;
    }
    queries = std::move(read).value();
  } else if (synth > 0) {
    queries = serve::SynthesizeWorkload(synth, block, data->num_series(),
                                        data->num_times(), workload_seed);
  }

  if (!queries.empty()) {
    // The replay report must describe the replay alone — not checkpoint
    // load, not the one-shot --impute-csv request above.
    service.ResetTelemetry();
    std::vector<std::future<serve::ImputationResponse>> futures;
    futures.reserve(queries.size());
    for (const serve::WorkloadQuery& query : queries) {
      futures.push_back(
          service.Submit(serve::MakeQueryRequest("default", data, mask, query)));
    }
    int failed = 0;
    for (auto& future : futures) {
      if (!future.get().status.ok()) ++failed;
    }
    serve::TelemetrySnapshot snap = service.telemetry();
    std::printf(
        "replayed %zu queries (%d failed) in %.2fs: p50 %.2f ms, p95 %.2f ms, "
        "max %.2f ms | %.1f req/s, %.1f rows/s, %.0f cells/s | mean batch "
        "%.2f\n",
        queries.size(), failed, snap.wall_seconds, snap.latency_p50_ms,
        snap.latency_p95_ms, snap.latency_max_ms, snap.requests_per_second,
        snap.rows_per_second, snap.cells_per_second, snap.mean_batch_size);
    if (failed > 0) return 1;
  }

  if (!telemetry_json.empty()) {
    std::ofstream out(telemetry_json);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   telemetry_json.c_str());
      return 1;
    }
    out << serve::TelemetryToJson(service.telemetry());
    std::printf("wrote telemetry %s\n", telemetry_json.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
