// dmvi_serve: load a DeepMVI checkpoint into the long-lived imputation
// service and replay a query workload against it — the serving half of the
// train-once/serve-many split (dmvi_train is the other half).
//
//   dmvi_serve --model model.dmvi --preset AirQ [--scale quick|full]
//              [--scenario MCAR] [--scenario-seed S] [--dataset-seed S]
//   dmvi_serve --model model.dmvi --input data.csv [--mask mask.csv]
//
// Workload (each query hides one block and asks the service to fill it):
//   --workload FILE            replay `row,t_start,block_len` lines
//   --synth N [--block B]      N random block queries (deterministic in
//                              --workload-seed)
// Service knobs: --batch (micro-batch cap), --linger-ms, --threads,
// --cache-mb (response cache; 0 = off).
// Overload ladder: --degrade-watermark N answers requests with the cheap
// --degrade-method imputer (LinearInterp/Mean) once the backlog (service
// queue + HTTP accept queue) reaches N; --shed-watermark M rejects with
// 503 at depth M. 0 (default) disables a rung.
// Reports p50/p95/max latency, rows/sec, and the full telemetry JSON
// (--telemetry-json PATH to persist it).
//
// Network mode: --listen HOST:PORT starts the src/net HTTP front-end
// (POST /v1/impute, GET /healthz, GET /metrics — Prometheus text,
// GET /metrics.json — telemetry JSON, POST /admin/reload) over the same
// service and blocks until SIGINT/SIGTERM. --http-workers sets the
// connection pool width, --port-file writes the bound HOST:PORT (port 0
// picks a free one) for scripts, and --reload-on-sighup makes SIGHUP
// warm-reload the checkpoint from --model without dropping connections.
// Bind/listen failures exit non-zero instead of aborting.
// Observability: --trace-out FILE exports Chrome trace-event JSON of the
// per-request span tree on shutdown (open in Perfetto); every response
// carries x-dmvi-request-id (client x-request-id honored); --log-level /
// --log-format control the structured access log. A flight recorder is
// always on: the last --flight-records requests (default 256) and those
// slower than --slow-ms (default 500) are answered live by GET
// /debug/requests and /debug/slow, GET /debug/profile?seconds=N serves
// on-demand CPU profiles as collapsed stacks, and GET /debug/state
// reports build hash + uptime + /proc gauges. A model-quality monitor is
// on by default (--quality off disables): live request inputs are scored
// for drift against the checkpoint's training reference profile
// (GET /debug/quality, /healthz "quality" rung vs --drift-threshold) and
// every --selfscore-every full predicts a few observed cells are hidden
// on a side mask, re-imputed, and scored (MAE/RMSE at /metrics).
// Instrumentation never changes response bytes.
//
// --impute-csv PATH sends the dataset's own base mask through the service
// once and writes the completed matrix; for a checkpoint from dmvi_train
// with the same dataset flags this output is byte-identical to
// dmvi_train's --impute-csv (proving save/load exactness across
// processes).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/io.h"
#include "net/endpoints.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "tools/dataset_flags.h"

// Build provenance for GET /debug/state; the definition comes from
// tools/CMakeLists.txt (same configure-time plumbing as dmvi_eval).
#ifndef DMVI_GIT_COMMIT
#define DMVI_GIT_COMMIT "unknown"
#endif

namespace deepmvi {
namespace {

// Signal flags polled by the --listen loop. sig_atomic_t writes are the
// only thing a handler may do portably.
volatile std::sig_atomic_t g_sighup = 0;
volatile std::sig_atomic_t g_shutdown = 0;

void OnSighup(int) { g_sighup = 1; }
void OnShutdown(int) { g_shutdown = 1; }

int Run(int argc, char** argv) {
  std::string model_path, workload_path, impute_csv, telemetry_json;
  std::string listen_address, port_file;
  std::string trace_out;
  obs::TraceLevel trace_level = obs::TraceLevel::kRequest;
  bool reload_on_sighup = false;
  int http_workers = 4;
  int flight_records = obs::FlightRecorder::kDefaultCapacity;
  double slow_ms = obs::FlightRecorder::kDefaultSlowThresholdSeconds * 1e3;
  bool quality_on = true;
  double drift_threshold = 0.2;
  serve::QualityMonitorOptions quality_options;
  tools::DatasetSpec dataset_spec;
  uint64_t workload_seed = 11;
  int synth = 0;
  int block = 10;
  serve::ServiceConfig service_config;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    if (tools::ParseDatasetFlag(argc, argv, &i, &dataset_spec,
                                &missing_value)) {
      continue;
    }
    auto next = [&](const char* flag) {
      return tools::NextFlagValue(argc, argv, &i, flag, &missing_value);
    };
    const char* value = nullptr;
    if ((value = next("--model"))) {
      model_path = value;
    } else if ((value = next("--workload"))) {
      workload_path = value;
    } else if ((value = next("--synth"))) {
      synth = std::atoi(value);
    } else if ((value = next("--block"))) {
      block = std::atoi(value);
    } else if ((value = next("--workload-seed"))) {
      workload_seed = std::strtoull(value, nullptr, 10);
    } else if ((value = next("--impute-csv"))) {
      impute_csv = value;
    } else if ((value = next("--telemetry-json"))) {
      telemetry_json = value;
    } else if ((value = next("--batch"))) {
      service_config.max_batch_size = std::atoi(value);
    } else if ((value = next("--linger-ms"))) {
      service_config.batch_linger_ms = std::atof(value);
    } else if ((value = next("--threads"))) {
      service_config.threads = std::atoi(value);
    } else if ((value = next("--cache-mb"))) {
      service_config.cache_mb = std::atof(value);
    } else if ((value = next("--degrade-watermark"))) {
      service_config.degrade_watermark = std::atoi(value);
    } else if ((value = next("--shed-watermark"))) {
      service_config.shed_watermark = std::atoi(value);
    } else if ((value = next("--degrade-method"))) {
      service_config.degrade_method = value;
    } else if ((value = next("--listen"))) {
      listen_address = value;
    } else if ((value = next("--http-workers"))) {
      http_workers = std::atoi(value);
    } else if ((value = next("--port-file"))) {
      port_file = value;
    } else if ((value = next("--flight-records"))) {
      flight_records = std::atoi(value);
    } else if ((value = next("--slow-ms"))) {
      slow_ms = std::atof(value);
    } else if ((value = next("--quality"))) {
      if (std::strcmp(value, "on") == 0) {
        quality_on = true;
      } else if (std::strcmp(value, "off") == 0) {
        quality_on = false;
      } else {
        std::fprintf(stderr, "--quality must be on or off\n");
        return 2;
      }
    } else if ((value = next("--drift-threshold"))) {
      drift_threshold = std::atof(value);
    } else if ((value = next("--selfscore-every"))) {
      quality_options.selfscore_every = std::atoi(value);
    } else if ((value = next("--selfscore-fraction"))) {
      quality_options.selfscore_fraction = std::atof(value);
    } else if ((value = next("--trace-out"))) {
      trace_out = value;
    } else if ((value = next("--trace-level"))) {
      if (std::strcmp(value, "request") == 0) {
        trace_level = obs::TraceLevel::kRequest;
      } else if (std::strcmp(value, "kernel") == 0) {
        trace_level = obs::TraceLevel::kKernel;
      } else {
        std::fprintf(stderr, "--trace-level must be request or kernel\n");
        return 2;
      }
    } else if ((value = next("--log-level"))) {
      if (!ParseLogSeverity(value, &MinLogSeverity())) {
        std::fprintf(stderr,
                     "--log-level must be debug, info, warning, or error\n");
        return 2;
      }
    } else if ((value = next("--log-format"))) {
      if (!ParseLogFormat(value, &GlobalLogFormat())) {
        std::fprintf(stderr, "--log-format must be plain, kv, or json\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--reload-on-sighup") == 0) {
      reload_on_sighup = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_serve --model model.dmvi\n"
          "                  (--preset NAME [--scale quick|full]\n"
          "                   [--scenario MCAR] [--scenario-seed S]\n"
          "                   [--dataset-seed S] | --input data.csv\n"
          "                   [--mask mask.csv])\n"
          "                  [--workload FILE | --synth N [--block B]\n"
          "                   [--workload-seed S]]\n"
          "                  [--batch N] [--linger-ms X] [--threads N]\n"
          "                  [--cache-mb MB]\n"
          "                  [--degrade-watermark N] [--shed-watermark N]\n"
          "                  [--degrade-method LinearInterp|Mean]\n"
          "                  [--impute-csv out.csv] [--telemetry-json out.json]\n"
          "                  [--listen HOST:PORT [--http-workers N]\n"
          "                   [--port-file PATH] [--reload-on-sighup]]\n"
          "                  [--flight-records N] [--slow-ms X]\n"
          "                  [--quality on|off] [--drift-threshold X]\n"
          "                  [--selfscore-every N] [--selfscore-fraction F]\n"
          "                  [--trace-out trace.json\n"
          "                   [--trace-level request|kernel]]\n"
          "                  [--log-level debug|info|warning|error]\n"
          "                  [--log-format plain|kv|json]\n");
      return 0;
    } else if (missing_value) {
      std::fprintf(stderr, "missing value for %s (see --help)\n", argv[i]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (model_path.empty()) {
    std::fprintf(stderr, "--model is required (see --help)\n");
    return 2;
  }

  // ---- Dataset + base mask (same construction as dmvi_train). ------------
  auto data = std::make_shared<DataTensor>();
  Mask mask;
  if (int exit_code =
          tools::BuildDatasetAndMask(dataset_spec, data.get(), &mask)) {
    return exit_code;
  }

  // ---- Observability: metrics always on, tracing behind --trace-out. -----
  // The registry is cheap (atomics + one mutex per scrape) and /metrics
  // needs the stage histograms, so it is wired unconditionally. The tracer
  // exists only when a trace file was requested; everywhere else pays one
  // branch.
  obs::MetricsRegistry metrics;
  std::unique_ptr<obs::CollectingTraceSink> trace_sink;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    trace_sink = std::make_unique<obs::CollectingTraceSink>();
    tracer = std::make_unique<obs::Tracer>(trace_sink.get(), trace_level);
    // Deep instrumentation (matmul kernels, storage loads) reaches the
    // tracer through the process global.
    obs::SetGlobalTracer(tracer.get());
  }
  service_config.metrics = &metrics;
  service_config.tracer = tracer.get();

  // Flight recorder: always on (bounded memory, one mutex-guarded slot
  // write per request), sized by --flight-records with --slow-ms as the
  // slow-ring threshold. /debug/requests and /debug/slow read it live.
  obs::FlightRecorder recorder(flight_records, slow_ms / 1e3);
  service_config.recorder = &recorder;

  // Model-quality monitor: on by default (--quality off for the
  // byte-identity comparisons; responses are cmp-equal either way).
  // Tracks live-input drift against the checkpoint's training reference
  // profile and runs masked self-scoring every --selfscore-every full
  // predicts; GET /debug/quality and the /healthz quality rung read it.
  std::unique_ptr<serve::QualityMonitor> quality;
  if (quality_on) {
    quality_options.metrics = &metrics;
    quality = std::make_unique<serve::QualityMonitor>(quality_options);
    service_config.quality = quality.get();
  }

  // ---- Bring the service up with the checkpoint. -------------------------
  serve::ImputationService service(service_config);
  Status loaded = service.registry().LoadFromFile("default", model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", model_path.c_str(),
                 loaded.ToString().c_str());
    return 1;
  }
  const TrainedDeepMvi* model = service.registry().Get("default");
  std::printf("serving %s: %lld parameters, %d series, window %d\n",
              model_path.c_str(),
              static_cast<long long>(model->num_parameters()),
              model->num_series(), model->config().window);

  // ---- One-shot full imputation (cross-process exactness check). ---------
  if (!impute_csv.empty()) {
    serve::ImputationRequest request;
    request.model = "default";
    request.data = data;
    request.mask = mask;
    serve::ImputationResponse response = service.Impute(request);
    if (!response.status.ok()) {
      std::fprintf(stderr, "imputation failed: %s\n",
                   response.status.ToString().c_str());
      return 1;
    }
    Status status = WriteDataTensor(
        DataTensor(data->dims(), std::move(response.imputed)), impute_csv);
    if (!status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", impute_csv.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote served imputation %s (%.2f ms)\n", impute_csv.c_str(),
                response.latency_seconds * 1e3);
  }

  // ---- Workload replay through the micro-batching path. ------------------
  std::vector<serve::WorkloadQuery> queries;
  if (!workload_path.empty()) {
    StatusOr<std::vector<serve::WorkloadQuery>> read =
        serve::ReadWorkload(workload_path);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.status().ToString().c_str());
      return 1;
    }
    queries = std::move(read).value();
  } else if (synth > 0) {
    queries = serve::SynthesizeWorkload(synth, block, data->num_series(),
                                        data->num_times(), workload_seed);
  }

  if (!queries.empty()) {
    // The replay report must describe the replay alone — not checkpoint
    // load, not the one-shot --impute-csv request above.
    service.ResetTelemetry();
    std::vector<std::future<serve::ImputationResponse>> futures;
    futures.reserve(queries.size());
    for (const serve::WorkloadQuery& query : queries) {
      futures.push_back(
          service.Submit(serve::MakeQueryRequest("default", data, mask, query)));
    }
    int failed = 0;
    for (auto& future : futures) {
      if (!future.get().status.ok()) ++failed;
    }
    serve::TelemetrySnapshot snap = service.telemetry();
    std::printf(
        "replayed %zu queries (%d failed) in %.2fs: p50 %.2f ms, p95 %.2f ms, "
        "max %.2f ms | %.1f req/s, %.1f rows/s, %.0f cells/s | mean batch "
        "%.2f\n",
        queries.size(), failed, snap.wall_seconds, snap.latency_p50_ms,
        snap.latency_p95_ms, snap.latency_max_ms, snap.requests_per_second,
        snap.rows_per_second, snap.cells_per_second, snap.mean_batch_size);
    if (failed > 0) return 1;
  }

  // ---- Network front-end: serve the same queries over HTTP. --------------
  if (!listen_address.empty()) {
    net::ServerConfig server_config;
    if (Status parsed = net::ParseHostPort(listen_address, &server_config.host,
                                           &server_config.port);
        !parsed.ok()) {
      std::fprintf(stderr, "--listen: %s\n", parsed.ToString().c_str());
      return 2;
    }
    server_config.num_workers = http_workers;
    server_config.metrics = &metrics;
    server_config.tracer = tracer.get();

    net::HttpServer server(server_config);
    net::ServingContext context;
    context.service = &service;
    context.data = data;
    context.base_mask = mask;
    context.metrics = &metrics;
    context.tracer = tracer.get();
    context.recorder = &recorder;
    context.trace_sink = trace_sink.get();
    context.quality = quality.get();
    context.drift_threshold = drift_threshold;
    context.build_commit = DMVI_GIT_COMMIT;
    context.reload = [&service, model_path](const std::string& model,
                                            const std::string& path) {
      // Atomic registry swap: requests already running finish against the
      // old weights, new requests see the new ones. The response cache
      // keys on the model pointer, so it can never serve the old weights'
      // results for the new model.
      return service.registry().LoadFromFile(
          model, path.empty() ? model_path : path);
    };
    net::RegisterServingEndpoints(&server, context);
    // Admission control should see connection pressure before those
    // requests reach the service queue: fold the accept-queue depth into
    // the watermark comparison.
    service.SetPressureProbe(
        [&server] { return server.pending_connections(); });

    if (Status started = server.Start(); !started.ok()) {
      std::fprintf(stderr, "cannot start server on %s: %s\n",
                   listen_address.c_str(), started.ToString().c_str());
      return 1;
    }
    std::printf("listening on %s (workers %d, cache %.0f MB)\n",
                server.address().c_str(), http_workers,
                service_config.cache_mb);
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     port_file.c_str());
        return 1;
      }
      out << server.address() << "\n";
    }

    std::signal(SIGINT, OnShutdown);
    std::signal(SIGTERM, OnShutdown);
    if (reload_on_sighup) std::signal(SIGHUP, OnSighup);

    while (!g_shutdown) {
      if (g_sighup) {
        g_sighup = 0;
        Status reloaded = context.reload("default", "");
        if (reloaded.ok()) {
          std::printf("SIGHUP: reloaded %s\n", model_path.c_str());
        } else {
          // Keep serving the old weights — a bad checkpoint on disk must
          // not take the service down.
          std::fprintf(stderr, "SIGHUP reload failed: %s\n",
                       reloaded.ToString().c_str());
        }
        std::fflush(stdout);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("shutting down: draining connections...\n");
    server.Stop();
    service.Stop();
    std::printf("served %lld requests\n",
                static_cast<long long>(server.requests_served()));
  }

  if (!telemetry_json.empty()) {
    std::ofstream out(telemetry_json);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   telemetry_json.c_str());
      return 1;
    }
    out << serve::TelemetryToJson(service.telemetry());
    std::printf("wrote telemetry %s\n", telemetry_json.c_str());
  }

  if (tracer != nullptr) {
    obs::SetGlobalTracer(nullptr);
    const std::vector<obs::SpanRecord> records = trace_sink->records();
    Status written = obs::WriteChromeTrace(records, trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing trace: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace %s (%zu spans, %lld dropped)\n",
                trace_out.c_str(), records.size(),
                static_cast<long long>(trace_sink->dropped()));
  }
  return 0;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
