// dmvi_shard: convert a dataset into the chunked time-block store format
// (src/storage) that dmvi_train / dmvi_bench_suite can train from with
// bounded memory (--data-dir).
//
//   dmvi_shard --input data.csv [--mask mask.csv] --out-dir DIR
//   dmvi_shard --preset AirQ [--scale quick|full] [--scenario MCAR]
//              [--scenario-seed S] [--dataset-seed S] --out-dir DIR
//   dmvi_shard --synth-series N --synth-length T [--synth-seed S]
//              [--scenario MCAR] [--scenario-seed S] --out-dir DIR
//
// Chunk geometry: --series-per-chunk (default 64) x --times-per-chunk
// (default 4096). The output directory holds manifest.dmvs + chunks.bin
// (see storage/chunk_store.h) plus mask.csv with the training
// availability mask.
//
// CSV inputs stream row by row (data/io CsvSeriesReader -> chunk writer),
// so files larger than RAM convert fine: peak memory is one series-group
// buffer (series_per_chunk x num_times doubles), never the full matrix.
// Presets and synthetic datasets are generated in-core first (their
// generators are), then written through the same streaming writer.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "storage/chunk_store.h"
#include "tools/dataset_flags.h"

namespace deepmvi {
namespace {

std::string MaskPath(const std::string& dir) {
  return dir + "/" + storage::kMaskFileName;
}

/// Streams a CSV into the store, writing mask.csv row by row alongside.
/// `extra_mask` (from --mask) is AND-combined per row when present.
int ShardCsv(const std::string& input, const std::string& extra_mask_path,
             const std::string& out_dir, const storage::ChunkStoreOptions& options) {
  Mask extra_mask;
  bool have_extra = false;
  if (!extra_mask_path.empty()) {
    StatusOr<Mask> loaded = ReadMask(extra_mask_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", extra_mask_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    extra_mask = std::move(loaded).value();
    have_extra = true;
  }

  StatusOr<CsvSeriesReader> reader = CsvSeriesReader::Open(input);
  if (!reader.ok()) {
    std::fprintf(stderr, "error opening %s: %s\n", input.c_str(),
                 reader.status().ToString().c_str());
    return 1;
  }
  StatusOr<std::unique_ptr<storage::ChunkedSeriesStoreWriter>> writer =
      storage::ChunkedSeriesStoreWriter::Create(out_dir, options);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  std::ofstream mask_out(MaskPath(out_dir));
  if (!mask_out) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 MaskPath(out_dir).c_str());
    return 1;
  }

  std::vector<double> values;
  std::vector<uint8_t> missing;
  while (true) {
    StatusOr<bool> more = reader->NextRow(&values, &missing);
    if (!more.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                   more.status().ToString().c_str());
      return 1;
    }
    if (!*more) break;
    const int row = reader->rows_read() - 1;
    if (have_extra && (extra_mask.rows() <= row ||
                       extra_mask.cols() != static_cast<int>(values.size()))) {
      std::fprintf(stderr, "mask shape does not match %s\n", input.c_str());
      return 1;
    }
    Status appended = (*writer)->AppendRow(values);
    if (!appended.ok()) {
      std::fprintf(stderr, "%s\n", appended.ToString().c_str());
      return 1;
    }
    for (size_t t = 0; t < values.size(); ++t) {
      if (t > 0) mask_out << ",";
      const bool available =
          missing[t] == 0 &&
          (!have_extra || extra_mask.available(row, static_cast<int>(t)));
      mask_out << (available ? 1 : 0);
    }
    mask_out << "\n";
  }
  if (reader->rows_read() == 0) {
    std::fprintf(stderr, "no data rows in %s\n", input.c_str());
    return 1;
  }
  if (have_extra && extra_mask.rows() != reader->rows_read()) {
    std::fprintf(stderr, "mask has %d rows, %s has %d\n", extra_mask.rows(),
                 input.c_str(), reader->rows_read());
    return 1;
  }
  mask_out.close();
  if (!mask_out) {
    std::fprintf(stderr, "write failed for %s\n", MaskPath(out_dir).c_str());
    return 1;
  }
  Status finished = (*writer)->Finish(reader->dims());
  if (!finished.ok()) {
    std::fprintf(stderr, "%s\n", finished.ToString().c_str());
    return 1;
  }
  std::printf("sharded %s: %d series x %d steps\n", input.c_str(),
              reader->rows_read(), reader->num_cols());
  return 0;
}

int Run(int argc, char** argv) {
  tools::DatasetSpec dataset_spec;
  std::string out_dir;
  storage::ChunkStoreOptions options;
  int synth_series = 0, synth_length = 0;
  uint64_t synth_seed = 1;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    if (tools::ParseDatasetFlag(argc, argv, &i, &dataset_spec,
                                &missing_value)) {
      continue;
    }
    auto next = [&](const char* flag) {
      return tools::NextFlagValue(argc, argv, &i, flag, &missing_value);
    };
    const char* value = nullptr;
    if ((value = next("--out-dir"))) {
      out_dir = value;
    } else if ((value = next("--series-per-chunk"))) {
      options.series_per_chunk = std::atoi(value);
    } else if ((value = next("--times-per-chunk"))) {
      options.times_per_chunk = std::atoi(value);
    } else if ((value = next("--synth-series"))) {
      synth_series = std::atoi(value);
    } else if ((value = next("--synth-length"))) {
      synth_length = std::atoi(value);
    } else if ((value = next("--synth-seed"))) {
      synth_seed = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_shard (--input data.csv [--mask mask.csv]\n"
          "                   | --preset NAME [--scale quick|full]\n"
          "                   | --synth-series N --synth-length T\n"
          "                     [--synth-seed S])\n"
          "                  [--scenario MCAR] [--scenario-seed S]\n"
          "                  [--dataset-seed S] --out-dir DIR\n"
          "                  [--series-per-chunk N] [--times-per-chunk N]\n");
      return 0;
    } else if (missing_value) {
      std::fprintf(stderr, "missing value for %s (see --help)\n", argv[i]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "--out-dir is required (see --help)\n");
    return 2;
  }
  const bool synth = synth_series > 0 || synth_length > 0;
  const int source_count = (!dataset_spec.preset.empty() ? 1 : 0) +
                           (!dataset_spec.input.empty() ? 1 : 0) +
                           (synth ? 1 : 0);
  if (source_count != 1) {
    std::fprintf(stderr,
                 "exactly one of --input / --preset / --synth-series is "
                 "required (see --help)\n");
    return 2;
  }

  Stopwatch watch;
  if (!dataset_spec.input.empty()) {
    const int exit_code =
        ShardCsv(dataset_spec.input, dataset_spec.mask_path, out_dir, options);
    if (exit_code != 0) return exit_code;
  } else {
    // Preset or synthetic: generate in-core, then write through the same
    // streaming writer; the training mask is the scenario's.
    DataTensor data;
    if (!dataset_spec.preset.empty()) {
      Mask unused;
      if (int exit_code =
              tools::BuildDatasetAndMask(dataset_spec, &data, &unused)) {
        return exit_code;
      }
    } else {
      if (synth_series <= 0 || synth_length <= 0) {
        std::fprintf(stderr,
                     "--synth-series and --synth-length must both be > 0\n");
        return 2;
      }
      SyntheticConfig config;
      config.num_series = synth_series;
      config.length = synth_length;
      config.seed = synth_seed;
      data = DataTensor::FromMatrix(GenerateSeriesMatrix(config));
    }
    StatusOr<ScenarioKind> kind = ParseScenarioKind(dataset_spec.scenario_name);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    ScenarioConfig scenario;
    scenario.kind = *kind;
    scenario.percent_incomplete = 1.0;
    scenario.seed = dataset_spec.scenario_seed;
    Mask mask = GenerateScenario(scenario, data.num_series(), data.num_times());

    Status written = storage::ChunkedSeriesStore::WriteTensor(data, out_dir,
                                                              options);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    written = WriteMask(mask, MaskPath(out_dir));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("sharded %d series x %d steps (%.2f%% missing)\n",
                data.num_series(), data.num_times(),
                100.0 * mask.MissingFraction());
  }

  StatusOr<storage::ChunkedSeriesStore> store =
      storage::ChunkedSeriesStore::Open(out_dir);
  if (!store.ok()) {
    std::fprintf(stderr, "store verification failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s in %.2fs: %d x %d chunks of %d series x %d steps\n",
      out_dir.c_str(), watch.ElapsedSeconds(), store->num_row_groups(),
      store->num_time_blocks(), store->series_per_chunk(),
      store->times_per_chunk());
  return 0;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
