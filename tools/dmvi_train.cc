// dmvi_train: fit a DeepMVI model once and save it as a checkpoint, the
// training half of the train-once/serve-many split (dmvi_serve is the
// other half).
//
//   dmvi_train --preset AirQ [--scale quick|full] [--scenario MCAR]
//              [--scenario-seed S] --output model.dmvi
//   dmvi_train --input data.csv [--mask mask.csv] --output model.dmvi
//
// Model knobs: --seed, --max-epochs, --samples, --window, --filters,
// --heads, --threads (training data-parallelism; results are bit-identical
// for any value). With --impute-csv PATH the freshly trained model also imputes
// the training dataset in-process and writes the result — CI compares it
// byte-for-byte against dmvi_serve's output for the same checkpoint to
// prove the save/load path is exact.
//
// Presets have no missing values of their own, so a scenario mask
// (default MCAR, seed 7) supplies the training missing pattern; CSV
// inputs use their inline nan/empty cells plus an optional --mask file.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/stopwatch.h"
#include "core/deepmvi.h"
#include "data/io.h"
#include "tools/dataset_flags.h"

namespace deepmvi {
namespace {

int Run(int argc, char** argv) {
  std::string output = "model.dmvi", impute_csv;
  tools::DatasetSpec dataset_spec;
  DeepMviConfig config;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    if (tools::ParseDatasetFlag(argc, argv, &i, &dataset_spec,
                                &missing_value)) {
      continue;
    }
    auto next = [&](const char* flag) {
      return tools::NextFlagValue(argc, argv, &i, flag, &missing_value);
    };
    const char* value = nullptr;
    if ((value = next("--output"))) {
      output = value;
    } else if ((value = next("--impute-csv"))) {
      impute_csv = value;
    } else if ((value = next("--seed"))) {
      config.seed = std::strtoull(value, nullptr, 10);
    } else if ((value = next("--max-epochs"))) {
      config.max_epochs = std::atoi(value);
    } else if ((value = next("--samples"))) {
      config.samples_per_epoch = std::atoi(value);
    } else if ((value = next("--window"))) {
      config.window = std::atoi(value);
    } else if ((value = next("--filters"))) {
      config.filters = std::atoi(value);
    } else if ((value = next("--heads"))) {
      config.num_heads = std::atoi(value);
    } else if ((value = next("--threads"))) {
      config.num_threads = std::atoi(value);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_train (--preset NAME [--scale quick|full]\n"
          "                   [--scenario MCAR] [--scenario-seed S]\n"
          "                   [--dataset-seed S] | --input data.csv\n"
          "                   [--mask mask.csv])\n"
          "                  [--output model.dmvi] [--impute-csv out.csv]\n"
          "                  [--seed N] [--max-epochs N] [--samples N]\n"
          "                  [--window W] [--filters P] [--heads H]\n"
          "                  [--threads N]\n");
      return 0;
    } else if (missing_value) {
      std::fprintf(stderr, "missing value for %s (see --help)\n", argv[i]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }

  // ---- Assemble the training dataset and mask. ---------------------------
  DataTensor data;
  Mask mask;
  if (int exit_code = tools::BuildDatasetAndMask(dataset_spec, &data, &mask)) {
    return exit_code;
  }
  if (mask.CountMissing() == 0) {
    std::fprintf(stderr,
                 "training mask has no missing cells; nothing to learn from\n");
    return 1;
  }

  // ---- Fit and checkpoint. ------------------------------------------------
  std::printf("fitting DeepMVI on %d series x %d steps (%.2f%% missing)\n",
              data.num_series(), data.num_times(),
              100.0 * mask.MissingFraction());
  DeepMviImputer imputer(config);
  Stopwatch watch;
  TrainedDeepMvi model = imputer.Fit(data, mask);
  const double fit_seconds = watch.ElapsedSeconds();
  const auto& stats = imputer.train_stats();
  std::printf(
      "fit in %.2fs: %d epochs, window %d, best validation loss %.6f, "
      "%lld parameters\n",
      fit_seconds, stats.epochs_run, stats.window_used,
      stats.best_validation_loss,
      static_cast<long long>(model.num_parameters()));

  Status saved = model.Save(output);
  if (!saved.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote checkpoint %s\n", output.c_str());

  if (!impute_csv.empty()) {
    Matrix imputed = model.Predict(data, mask);
    Status status =
        WriteDataTensor(DataTensor(data.dims(), std::move(imputed)), impute_csv);
    if (!status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", impute_csv.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote in-process imputation %s\n", impute_csv.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
