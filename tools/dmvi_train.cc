// dmvi_train: fit a DeepMVI model once and save it as a checkpoint, the
// training half of the train-once/serve-many split (dmvi_serve is the
// other half).
//
//   dmvi_train --preset AirQ [--scale quick|full] [--scenario MCAR]
//              [--scenario-seed S] --output model.dmvi
//   dmvi_train --input data.csv [--mask mask.csv] --output model.dmvi
//   dmvi_train --data-dir DIR [--cache-mb N | --in-core] --output model.dmvi
//
// --data-dir trains from a chunked store written by dmvi_shard (the mask
// comes from DIR/mask.csv): training streams value windows through a
// --cache-mb-bounded chunk cache, so peak residency stays far below the
// dense tensor and the checkpoint is byte-identical to in-core training
// on the same data. --in-core instead materializes the store into a dense
// tensor and runs the historical in-core path — the reference side of the
// CI `cmp` that enforces that identity.
//
// Model knobs: --seed, --max-epochs, --samples, --window, --filters,
// --heads, --threads (training data-parallelism; results are bit-identical
// for any value). With --impute-csv PATH the freshly trained model also imputes
// the training dataset in-process and writes the result — CI compares it
// byte-for-byte against dmvi_serve's output for the same checkpoint to
// prove the save/load path is exact.
//
// Presets have no missing values of their own, so a scenario mask
// (default MCAR, seed 7) supplies the training missing pattern; CSV
// inputs use their inline nan/empty cells plus an optional --mask file.
//
// --profile-out FILE samples the fit with the obs CPU profiler (at
// --profile-hz, default 99) and writes collapsed stacks — feed the file to
// flamegraph.pl or speedscope. Profiling, like tracing, never changes the
// checkpoint bytes.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "core/deepmvi.h"
#include "data/io.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "storage/chunk_cache.h"
#include "storage/chunk_store.h"
#include "storage/data_source.h"
#include "tools/dataset_flags.h"

namespace deepmvi {
namespace {

int Run(int argc, char** argv) {
  std::string output = "model.dmvi", impute_csv, data_dir, trace_out;
  std::string profile_out;
  int profile_hz = obs::CpuProfiler::kDefaultHz;
  obs::TraceLevel trace_level = obs::TraceLevel::kKernel;
  tools::DatasetSpec dataset_spec;
  DeepMviConfig config;
  int cache_mb = 256;
  bool in_core = false;
  bool missing_value = false;
  for (int i = 1; i < argc; ++i) {
    if (tools::ParseDatasetFlag(argc, argv, &i, &dataset_spec,
                                &missing_value)) {
      continue;
    }
    auto next = [&](const char* flag) {
      return tools::NextFlagValue(argc, argv, &i, flag, &missing_value);
    };
    const char* value = nullptr;
    if ((value = next("--output"))) {
      output = value;
    } else if ((value = next("--data-dir"))) {
      data_dir = value;
    } else if ((value = next("--cache-mb"))) {
      cache_mb = std::atoi(value);
    } else if (std::strcmp(argv[i], "--in-core") == 0) {
      in_core = true;
    } else if ((value = next("--impute-csv"))) {
      impute_csv = value;
    } else if ((value = next("--seed"))) {
      config.seed = std::strtoull(value, nullptr, 10);
    } else if ((value = next("--max-epochs"))) {
      config.max_epochs = std::atoi(value);
    } else if ((value = next("--samples"))) {
      config.samples_per_epoch = std::atoi(value);
    } else if ((value = next("--window"))) {
      config.window = std::atoi(value);
    } else if ((value = next("--filters"))) {
      config.filters = std::atoi(value);
    } else if ((value = next("--heads"))) {
      config.num_heads = std::atoi(value);
    } else if ((value = next("--threads"))) {
      config.num_threads = std::atoi(value);
    } else if ((value = next("--profile-out"))) {
      profile_out = value;
    } else if ((value = next("--profile-hz"))) {
      profile_hz = std::atoi(value);
    } else if ((value = next("--trace-out"))) {
      trace_out = value;
    } else if ((value = next("--trace-level"))) {
      if (std::strcmp(value, "request") == 0) {
        trace_level = obs::TraceLevel::kRequest;
      } else if (std::strcmp(value, "kernel") == 0) {
        trace_level = obs::TraceLevel::kKernel;
      } else {
        std::fprintf(stderr, "--trace-level must be request or kernel\n");
        return 2;
      }
    } else if ((value = next("--log-level"))) {
      if (!ParseLogSeverity(value, &MinLogSeverity())) {
        std::fprintf(stderr,
                     "--log-level must be debug, info, warning, or error\n");
        return 2;
      }
    } else if ((value = next("--log-format"))) {
      if (!ParseLogFormat(value, &GlobalLogFormat())) {
        std::fprintf(stderr, "--log-format must be plain, kv, or json\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dmvi_train (--preset NAME [--scale quick|full]\n"
          "                   [--scenario MCAR] [--scenario-seed S]\n"
          "                   [--dataset-seed S] | --input data.csv\n"
          "                   [--mask mask.csv] | --data-dir DIR\n"
          "                   [--cache-mb N | --in-core])\n"
          "                  [--output model.dmvi] [--impute-csv out.csv]\n"
          "                  [--seed N] [--max-epochs N] [--samples N]\n"
          "                  [--window W] [--filters P] [--heads H]\n"
          "                  [--threads N]\n"
          "                  [--profile-out stacks.txt [--profile-hz N]]\n"
          "                  [--trace-out trace.json\n"
          "                   [--trace-level request|kernel]]\n"
          "                  [--log-level debug|info|warning|error]\n"
          "                  [--log-format plain|kv|json]\n");
      return 0;
    } else if (missing_value) {
      std::fprintf(stderr, "missing value for %s (see --help)\n", argv[i]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s (see --help)\n", argv[i]);
      return 2;
    }
  }

  // ---- Assemble the training dataset and mask. ---------------------------
  DataTensor data;
  Mask mask;
  storage::ChunkedSeriesStore store;
  bool chunked = false;
  if (!data_dir.empty()) {
    if (!dataset_spec.preset.empty() || !dataset_spec.input.empty() ||
        !dataset_spec.mask_path.empty()) {
      std::fprintf(stderr,
                   "--data-dir conflicts with --preset/--input/--mask (the "
                   "store's mask.csv is the training mask)\n");
      return 2;
    }
    StatusOr<storage::ChunkedSeriesStore> opened =
        storage::ChunkedSeriesStore::Open(data_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "error opening store %s: %s\n", data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(opened).value();
    StatusOr<Mask> mask_or =
        ReadMask(data_dir + "/" + storage::kMaskFileName);
    if (!mask_or.ok()) {
      std::fprintf(stderr, "error reading store mask: %s\n",
                   mask_or.status().ToString().c_str());
      return 1;
    }
    mask = std::move(mask_or).value();
    if (mask.rows() != store.num_series() || mask.cols() != store.num_times()) {
      std::fprintf(stderr, "store mask shape %dx%d does not match store %dx%d\n",
                   mask.rows(), mask.cols(), store.num_series(),
                   store.num_times());
      return 1;
    }
    if (in_core) {
      // Reference path: materialize the dense tensor and train in-core.
      StatusOr<DataTensor> tensor = store.ReadTensor();
      if (!tensor.ok()) {
        std::fprintf(stderr, "error materializing store: %s\n",
                     tensor.status().ToString().c_str());
        return 1;
      }
      data = std::move(tensor).value();
    } else {
      chunked = true;
    }
  } else if (int exit_code =
                 tools::BuildDatasetAndMask(dataset_spec, &data, &mask)) {
    return exit_code;
  }
  if (mask.CountMissing() == 0) {
    std::fprintf(stderr,
                 "training mask has no missing cells; nothing to learn from\n");
    return 1;
  }
  if (chunked && !impute_csv.empty()) {
    std::fprintf(stderr,
                 "--impute-csv needs the dense tensor; combine --data-dir "
                 "with --in-core\n");
    return 2;
  }

  // ---- Tracing: training spans (epochs, batches, kernels) via the
  // process-global tracer; kernel level is the default here because the
  // blocked MatMul and storage chunk loads are what a training trace is
  // for. Tracing never touches the numerics — the checkpoint is
  // byte-identical either way.
  std::unique_ptr<obs::CollectingTraceSink> trace_sink;
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    trace_sink = std::make_unique<obs::CollectingTraceSink>();
    tracer = std::make_unique<obs::Tracer>(trace_sink.get(), trace_level);
    obs::SetGlobalTracer(tracer.get());
  }

  // ---- Profiling: sample the fit and write collapsed stacks. Like
  // tracing, the profiler only observes — the checkpoint is byte-identical
  // with or without --profile-out (CI cmp-enforces this).
  if (!profile_out.empty()) {
    if (Status started = obs::CpuProfiler::Start(profile_hz); !started.ok()) {
      std::fprintf(stderr, "cannot start profiler: %s\n",
                   started.ToString().c_str());
      return 1;
    }
  }

  // ---- Fit and checkpoint. ------------------------------------------------
  std::printf("fitting DeepMVI on %d series x %d steps (%.2f%% missing)%s\n",
              mask.rows(), mask.cols(), 100.0 * mask.MissingFraction(),
              chunked ? " from chunked store" : "");
  DeepMviImputer imputer(config);
  Stopwatch watch;
  TrainedDeepMvi model;
  if (chunked) {
    storage::ChunkCache cache(static_cast<int64_t>(cache_mb) << 20);
    storage::ChunkedDataSource source(&store, &cache);
    StatusOr<TrainedDeepMvi> trained = imputer.Fit(source, mask);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.status().ToString().c_str());
      return 1;
    }
    model = std::move(trained).value();
    const storage::ChunkCache::Stats cs = cache.stats();
    std::printf(
        "chunk cache: %lld hits, %lld misses, %lld evictions, peak %.1f MiB "
        "(budget %d MiB)\n",
        static_cast<long long>(cs.hits), static_cast<long long>(cs.misses),
        static_cast<long long>(cs.evictions),
        static_cast<double>(cs.peak_bytes) / (1024.0 * 1024.0), cache_mb);
  } else {
    model = imputer.Fit(data, mask);
  }
  const double fit_seconds = watch.ElapsedSeconds();
  if (!profile_out.empty()) {
    const obs::ProfileResult profile = obs::CpuProfiler::Stop();
    std::ofstream out(profile_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", profile_out.c_str());
      return 1;
    }
    out << profile.collapsed;
    std::printf(
        "wrote profile %s (%lld samples at %d Hz over %.2fs, %lld dropped)\n",
        profile_out.c_str(), static_cast<long long>(profile.samples),
        profile.hz, profile.duration_seconds,
        static_cast<long long>(profile.dropped));
  }
  if (tracer != nullptr) {
    obs::SetGlobalTracer(nullptr);
    const std::vector<obs::SpanRecord> records = trace_sink->records();
    Status written = obs::WriteChromeTrace(records, trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing trace: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace %s (%zu spans, %lld dropped)\n",
                trace_out.c_str(), records.size(),
                static_cast<long long>(trace_sink->dropped()));
  }
  const auto& stats = imputer.train_stats();
  std::printf(
      "fit in %.2fs: %d epochs, window %d, best validation loss %.6f, "
      "%lld parameters\n",
      fit_seconds, stats.epochs_run, stats.window_used,
      stats.best_validation_loss,
      static_cast<long long>(model.num_parameters()));

  Status saved = model.Save(output);
  if (!saved.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote checkpoint %s\n", output.c_str());

  if (!impute_csv.empty()) {
    Matrix imputed = model.Predict(data, mask);
    Status status =
        WriteDataTensor(DataTensor(data.dims(), std::move(imputed)), impute_csv);
    if (!status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", impute_csv.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote in-process imputation %s\n", impute_csv.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace deepmvi

int main(int argc, char** argv) { return deepmvi::Run(argc, argv); }
