#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace deepmvi {
namespace lint {
namespace {

namespace fs = std::filesystem;

/// True when `path` equals `prefix` or lives under `prefix`/.
bool IsUnder(const std::string& path, const std::string& prefix) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Whole-token occurrence of `token` in `text`: the neighbors must not be
/// identifier characters (so std::condition_variable does not also match
/// inside std::condition_variable_any).
bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

/// `name` followed by '(' (whitespace allowed), not preceded by an
/// identifier character — catches rand( / std::rand( but not strand(.
bool ContainsCall(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t end = pos + name.size();
    while (end < text.size() &&
           std::isspace(static_cast<unsigned char>(text[end])) != 0) {
      ++end;
    }
    if (left_ok && end < text.size() && text[end] == '(') return true;
    pos += 1;
  }
  return false;
}

/// Drops // and /* */ comments from one line; `in_block` carries block
/// state across lines. The exemption marker is read from the raw line
/// before stripping, so markers themselves live in comments.
std::string StripComments(const std::string& line, bool* in_block) {
  std::string out;
  size_t i = 0;
  while (i < line.size()) {
    if (*in_block) {
      const size_t close = line.find("*/", i);
      if (close == std::string::npos) return out;
      *in_block = false;
      i = close + 2;
      continue;
    }
    if (line.compare(i, 2, "//") == 0) break;
    if (line.compare(i, 2, "/*") == 0) {
      *in_block = true;
      i += 2;
      continue;
    }
    out += line[i];
    ++i;
  }
  return out;
}

bool LineAllows(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("dmvi-lint: allow-" + rule) != std::string::npos;
}

/// The layer DAG, mirroring the link edges in src/*/CMakeLists.txt: a
/// layer may include its own headers, its (transitive) dependencies, and
/// nothing else. Keep in sync with the build when layers move.
const std::map<std::string, std::set<std::string>>& LayerClosure() {
  static const auto* closure = [] {
    std::map<std::string, std::set<std::string>> direct;
    direct["common"] = {};
    direct["obs"] = {"common"};
    direct["tensor"] = {"common", "obs"};
    direct["linalg"] = {"tensor"};
    direct["autodiff"] = {"tensor"};
    direct["nn"] = {"autodiff", "tensor"};
    direct["data"] = {"tensor"};
    direct["storage"] = {"nn", "obs", "tensor"};
    direct["scenario"] = {"tensor"};
    direct["core"] = {"data", "nn", "obs", "storage"};
    direct["serve"] = {"baselines", "core", "obs"};
    direct["net"] = {"obs", "serve"};
    direct["deep"] = {"data", "nn"};
    direct["baselines"] = {"data", "linalg"};
    direct["eval"] = {"data", "scenario", "storage"};
    // Transitive closure (the graph is tiny; fixed-point iteration).
    auto* out = new std::map<std::string, std::set<std::string>>(direct);
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [layer, deps] : *out) {
        std::set<std::string> grown = deps;
        for (const std::string& dep : deps) {
          const auto it = out->find(dep);
          if (it == out->end()) continue;
          grown.insert(it->second.begin(), it->second.end());
        }
        if (grown.size() != deps.size()) {
          deps = std::move(grown);
          changed = true;
        }
      }
    }
    for (auto& [layer, deps] : *out) deps.insert(layer);  // Self-includes.
    return out;
  }();
  return *closure;
}

/// First path segment of a project include on this line, or "" when the
/// line is not a project #include.
std::string ProjectIncludeLayer(const std::string& code_line,
                                std::string* included_path) {
  size_t i = 0;
  while (i < code_line.size() &&
         std::isspace(static_cast<unsigned char>(code_line[i])) != 0) {
    ++i;
  }
  const std::string prefix = "#include \"";
  if (code_line.compare(i, prefix.size(), prefix) != 0) return "";
  const size_t start = i + prefix.size();
  const size_t end = code_line.find('"', start);
  if (end == std::string::npos) return "";
  *included_path = code_line.substr(start, end - start);
  const size_t slash = included_path->find('/');
  if (slash == std::string::npos) return "";
  return included_path->substr(0, slash);
}

struct TokenRule {
  const char* token;
  bool call_form;  // Match only when followed by '('.
};

void CheckSyncPrimitives(const std::string& path, int line_number,
                         const std::string& raw, const std::string& code,
                         std::vector<Violation>* out) {
  if (path == "src/common/mutex.h") return;  // The wrapper itself.
  if (LineAllows(raw, "sync-primitive")) return;
  // Token literals are split mid-word so this table does not trip the
  // very rule it implements when the tree lints itself.
  static const TokenRule kBanned[] = {
      {"std::mu" "tex", false},           {"std::timed_mu" "tex", false},
      {"std::recursive_mu" "tex", false}, {"std::shared_mu" "tex", false},
      {"std::lock_gu" "ard", false},      {"std::unique_lo" "ck", false},
      {"std::scoped_lo" "ck", false},     {"std::shared_lo" "ck", false},
      {"std::condition_vari" "able", false},
      {"std::condition_vari" "able_any", false},
      {"<mu" "tex>", false},              {"<condition_vari" "able>", false},
      {"<shared_mu" "tex>", false},
  };
  for (const TokenRule& rule : kBanned) {
    if (ContainsToken(code, rule.token)) {
      out->push_back({path, line_number, "sync-primitive",
                      std::string(rule.token) +
                          ": use Mutex/MutexLock/CondVar from "
                          "common/mutex.h (annotated for -Wthread-safety)"});
      return;  // One finding per line is enough.
    }
  }
}

void CheckRawRng(const std::string& path, int line_number,
                 const std::string& raw, const std::string& code,
                 std::vector<Violation>* out) {
  if (path == "src/common/rng.h" || path == "src/common/rng.cc") return;
  if (LineAllows(raw, "raw-rng")) return;
  // Literals split mid-word: see the sync-primitive table.
  static const TokenRule kBanned[] = {
      {"std::mt19" "937", false},         {"std::mt19" "937_64", false},
      {"std::minstd_ra" "nd", false},     {"std::minstd_ra" "nd0", false},
      {"std::default_random_eng" "ine", false},
      {"std::random_dev" "ice", false},
      {"ra" "nd", true},                  {"sra" "nd", true},
  };
  for (const TokenRule& rule : kBanned) {
    const bool hit = rule.call_form ? ContainsCall(code, rule.token)
                                    : ContainsToken(code, rule.token);
    if (hit) {
      out->push_back({path, line_number, "raw-rng",
                      std::string(rule.token) +
                          ": use common::Rng (common/rng.h) so runs stay "
                          "seeded and reproducible"});
      return;
    }
  }
}

void CheckIostream(const std::string& path, int line_number,
                   const std::string& raw, const std::string& code,
                   std::vector<Violation>* out) {
  if (!IsUnder(path, "src")) return;  // Tools and tests may print.
  if (path == "src/common/logging.cc") return;  // The one emitter.
  if (LineAllows(raw, "iostream")) return;
  // Literals split mid-word: see the sync-primitive table.
  static const TokenRule kBanned[] = {
      {"std::co" "ut", false}, {"std::ce" "rr", false},
      {"std::cl" "og", false}, {"<iostr" "eam>", false},
      {"pri" "ntf", true},     {"pu" "ts", true},
  };
  for (const TokenRule& rule : kBanned) {
    const bool hit = rule.call_form ? ContainsCall(code, rule.token)
                                    : ContainsToken(code, rule.token);
    if (hit) {
      out->push_back({path, line_number, "iostream",
                      std::string(rule.token) +
                          ": library code reports through DMVI_LOG / "
                          "Status, never the process streams"});
      return;
    }
  }
}

void CheckLayerInclude(const std::string& path, int line_number,
                       const std::string& raw, const std::string& code,
                       std::vector<Violation>* out) {
  if (!IsUnder(path, "src")) return;
  if (LineAllows(raw, "layer-include")) return;
  // src/<layer>/...
  const size_t first = path.find('/');
  const size_t second = path.find('/', first + 1);
  if (second == std::string::npos) return;  // A file directly under src/.
  const std::string layer = path.substr(first + 1, second - first - 1);
  const auto& closure = LayerClosure();
  const auto allowed = closure.find(layer);
  if (allowed == closure.end()) return;  // Unknown directory: no DAG rule.
  std::string included;
  const std::string included_layer = ProjectIncludeLayer(code, &included);
  if (included_layer.empty()) return;
  if (closure.find(included_layer) == closure.end()) return;  // Not a layer.
  if (allowed->second.count(included_layer) != 0) return;
  out->push_back({path, line_number, "layer-include",
                  "\"" + included + "\": layer '" + layer +
                      "' must not include layer '" + included_layer +
                      "' (not among its CMake link dependencies)"});
}

void CheckStatusNodiscard(const std::string& repo_root,
                          std::vector<Violation>* out) {
  const std::string path = "src/common/status.h";
  std::ifstream in(fs::path(repo_root) / path);
  if (!in) {
    out->push_back({path, 0, "status-nodiscard", "cannot open for reading"});
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  for (const char* required :
       {"class [[nodiscard]] Status", "class [[nodiscard]] StatusOr"}) {
    if (contents.find(required) == std::string::npos) {
      out->push_back({path, 0, "status-nodiscard",
                      std::string("expected '") + required +
                          "' — ignored error returns must stay compiler "
                          "warnings"});
    }
  }
}

bool IsLintableFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

}  // namespace

std::vector<Violation> LintFileContents(const std::string& path,
                                        const std::string& contents) {
  std::vector<Violation> violations;
  std::istringstream stream(contents);
  std::string raw;
  bool in_block_comment = false;
  int line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    const std::string code = StripComments(raw, &in_block_comment);
    if (code.empty()) continue;
    CheckSyncPrimitives(path, line_number, raw, code, &violations);
    CheckRawRng(path, line_number, raw, code, &violations);
    CheckIostream(path, line_number, raw, code, &violations);
    CheckLayerInclude(path, line_number, raw, code, &violations);
  }
  return violations;
}

std::vector<Violation> LintTree(const std::string& repo_root,
                                const std::vector<std::string>& roots) {
  std::vector<Violation> violations;
  CheckStatusNodiscard(repo_root, &violations);
  for (const std::string& root : roots) {
    const fs::path absolute = fs::path(repo_root) / root;
    std::error_code error;
    if (!fs::exists(absolute, error)) {
      violations.push_back({root, 0, "walk", "root does not exist"});
      continue;
    }
    std::vector<fs::path> files;
    if (fs::is_regular_file(absolute, error)) {
      files.push_back(absolute);
    } else {
      for (fs::recursive_directory_iterator it(absolute, error), end;
           it != end && !error; it.increment(error)) {
        if (it->is_directory() &&
            it->path().filename() == "lint_fixtures") {
          it.disable_recursion_pending();  // Fixtures violate on purpose.
          continue;
        }
        if (it->is_regular_file() && IsLintableFile(it->path())) {
          files.push_back(it->path());
        }
      }
      if (error) {
        violations.push_back({root, 0, "walk", "walk failed: " +
                              error.message()});
        continue;
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file);
      if (!in) {
        violations.push_back({file.generic_string(), 0, "walk",
                              "cannot open for reading"});
        continue;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string relative =
          fs::relative(file, repo_root, error).generic_string();
      const std::string lint_path = error ? file.generic_string() : relative;
      std::vector<Violation> found = LintFileContents(lint_path, buffer.str());
      violations.insert(violations.end(), found.begin(), found.end());
    }
  }
  return violations;
}

std::string FormatViolation(const Violation& violation) {
  std::ostringstream out;
  out << violation.file;
  if (violation.line > 0) out << ":" << violation.line;
  out << ": [" << violation.rule << "] " << violation.message;
  return out.str();
}

}  // namespace lint
}  // namespace deepmvi
