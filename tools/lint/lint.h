#ifndef DEEPMVI_TOOLS_LINT_LINT_H_
#define DEEPMVI_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace deepmvi {
namespace lint {

/// One repo-invariant violation. `line` is 1-based; 0 marks a file-level
/// finding (e.g. a required attribute missing from a header).
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// The rules, for --help output and the self-tests:
///  - sync-primitive : raw <mutex>/<condition_variable> primitives outside
///    src/common/mutex.h — everything must go through the annotated
///    Mutex/MutexLock/CondVar wrappers so Clang -Wthread-safety sees every
///    critical section.
///  - raw-rng        : raw std engines / rand() outside src/common/rng.* —
///    all randomness flows through common::Rng so runs stay seeded and
///    reproducible.
///  - iostream       : std::cout/cerr writes in library code (src/ outside
///    the logging emitter) — libraries report through DMVI_LOG / Status.
///  - status-nodiscard : src/common/status.h must keep [[nodiscard]] on
///    Status and StatusOr so ignored error returns stay compiler errors.
///  - layer-include  : project includes in src/<layer>/ must respect the
///    layer DAG (the CMake link edges); no upward or sideways includes.
///
/// A line ending in a `dmvi-lint: allow-<rule>` comment is exempt from
/// that rule (used by the wrapper itself and by this linter's own token
/// tables).

/// Lints one file's contents. `path` must be repo-relative with forward
/// slashes — rule applicability (src/ vs tools/, exempt files) is decided
/// from it.
std::vector<Violation> LintFileContents(const std::string& path,
                                        const std::string& contents);

/// Walks `roots` (paths relative to `repo_root`) and lints every .h/.cc
/// file, plus the repo-level checks (status-nodiscard). Fixture trees
/// under tests/lint_fixtures/ are skipped. Unreadable roots are reported
/// as file-level violations rather than silently skipped.
std::vector<Violation> LintTree(const std::string& repo_root,
                                const std::vector<std::string>& roots);

/// "file:line: [rule] message" (file-level findings omit the line).
std::string FormatViolation(const Violation& violation);

}  // namespace lint
}  // namespace deepmvi

#endif  // DEEPMVI_TOOLS_LINT_LINT_H_
